// Package match implements the matching and evaluation pipeline of the
// paper's Section 4: unifier propagation over connected components of the
// unifiability graph (Algorithm 1, with a dense union-find fast path over
// interned terms), combined-query construction (Section 4.2), and
// coordinated answering against the memdb substrate.
//
// Evaluation runs through memdb's compiled plans. The hot path —
// EvaluateComponentFast, used by the engine for every closing component —
// compiles the combined query's body straight off the dense unifier: each
// argument resolves to a class constant or a class-root binding slot, the
// plan builder and execution scratch are pooled, and the survivors' heads
// are grounded directly from the winning binding row, so no CombinedQuery,
// map-backed unifier or ir.Substitution is materialised on the way to an
// answer. The literal pipeline (BuildCombined → Simplify → EvalConjunctive)
// remains for diagnostics-bearing callers, for components the fast path
// cannot handle, and — via Options.LegacyEval — as the equivalence ablation
// that routes evaluation through memdb's retained map-backed evaluator.
package match

import (
	"fmt"
	"sort"
	"sync"

	"entangle/internal/graph"
	"entangle/internal/ir"
	"entangle/internal/memdb"
	"entangle/internal/unify"
)

// RemovalCause explains why matching removed a query from consideration.
type RemovalCause int

const (
	// CauseUnsatisfiedPost — a postcondition has no unifying head in the
	// workload (indegree < PCCOUNT). In incremental mode such a query may
	// simply be waiting for a partner that has not arrived yet.
	CauseUnsatisfiedPost RemovalCause = iota
	// CauseClash — unifier propagation produced a constant clash; no future
	// arrival can repair this under the safety condition, so the query is
	// permanently unanswerable.
	CauseClash
	// CauseCascade — the query was removed by CLEANUP because a query it
	// depends on (directly or transitively) was removed.
	CauseCascade
	// CauseGlobalMGU — the component's surviving unifiers admit no global
	// most general unifier (Section 4.2), so the component is rejected.
	CauseGlobalMGU
)

// String names the cause.
func (c RemovalCause) String() string {
	switch c {
	case CauseUnsatisfiedPost:
		return "unsatisfied postcondition"
	case CauseClash:
		return "unifier clash"
	case CauseCascade:
		return "cascade cleanup"
	case CauseGlobalMGU:
		return "no global unifier"
	case CauseNoData:
		return "no satisfying data"
	case CauseUnsafe:
		return "unsafe"
	case CauseEvalError:
		return "evaluation failed"
	default:
		return fmt.Sprintf("RemovalCause(%d)", int(c))
	}
}

// Removal pairs a removed query with its cause. Detail, when non-empty,
// carries cause-specific context — for CauseEvalError, the evaluation
// error's text — so operators can tell "no data matched" from "the
// evaluator failed" without grepping server logs.
type Removal struct {
	Query  ir.QueryID
	Cause  RemovalCause
	Detail string
}

// MatchResult is the outcome of running Algorithm 1 on one connected
// component of the unifiability graph.
type MatchResult struct {
	// Survivors are the answerable queries, in insertion order, each with
	// its final unifier.
	Survivors []ir.QueryID
	Unifiers  map[ir.QueryID]*unify.Unifier
	// Global, when non-nil, is the component's global unifier — the mgu of
	// all survivor unifiers — computed as a by-product of the dense fast
	// path. BuildCombined uses it directly instead of re-merging the
	// survivors; consumers must treat it as read-only.
	Global *unify.Unifier
	// Removed lists queries eliminated during matching with their causes.
	Removed []Removal
	// Stats
	Iterations int // number of queue dequeues performed
	MGUCalls   int // number of pairwise unifier merges
}

// Options tunes MatchComponent and the evaluation entry points.
type Options struct {
	// NaiveMGU switches unifier merging to the quadratic baseline (A3).
	NaiveMGU bool
	// LegacyEval routes combined-query evaluation through the retained
	// map-backed evaluator (memdb.EvalConjunctiveLegacy) and the literal
	// BuildCombined/Simplify pipeline instead of compiled plans. The two
	// paths are equivalence-tested: identical answers, rejections and
	// fixed-seed CHOOSE draws.
	LegacyEval bool
	// Plans, when non-nil, caches compiled evaluation plans by component
	// shape on the dense fast path: repeat shapes skip join-order
	// compilation entirely, executing the cached parameterised plan with
	// the component's constants late-bound. Safe to share across shards.
	Plans *memdb.PlanCache
}

// denseState is the pooled scratch of the fast path: an interner and a
// slice-backed union-find, reused across components and safe for the
// engine's concurrent per-component flush evaluations.
type denseState struct {
	in *unify.Interner
	du *unify.DenseUnifier
}

var densePool = sync.Pool{New: func() any {
	in := unify.NewInterner()
	return &denseState{in: in, du: unify.NewDenseUnifier(in)}
}}

// MatchComponent runs unifier propagation (Algorithm 1) on the queries of
// one connected component of g. The component must be exactly the member
// set of a live connected component (as produced by ConnectedComponents,
// ComponentMembers or ClosedComponents). Queries in the component must have
// pairwise-disjoint variable names (rename apart first).
//
// Two implementations sit behind this entry point. The dense fast path
// handles the dominant case — every member's postconditions are fed and no
// constant clash exists: then no query is ever removed and every final
// unifier merges into one global mgu, so a single union-find pass over the
// component's edges (on interned int slices, no maps, pooled scratch)
// produces the result. If any member is starved or any union clashes, the
// run falls back to the literal Algorithm 1 with per-member unifiers and
// CLEANUP cascades, whose removal attribution the fast path cannot
// reproduce. The A3 NaiveMGU ablation always takes the literal path.
//
// g may be the live graph (under-lock callers) or a graph.CompSnap (the
// engine's out-of-lock coordination rounds): matching only ever reads the
// View surface.
func MatchComponent(g graph.View, component []ir.QueryID, opt Options) *MatchResult {
	if !opt.NaiveMGU {
		if res := matchFast(g, component); res != nil {
			return res
		}
	}
	return matchSlow(g, component, opt)
}

// matchFastCoreInto runs the one-pass dense union-find over the component's
// edges using the caller's scratch (pooled or worker-pinned). ok false means
// the component needs the literal algorithm (dead or starved member, or a
// unifier clash — removal attribution the dense pass cannot reproduce); the
// scratch remains the caller's to reuse either way.
func matchFastCoreInto(st *denseState, g graph.View, component []ir.QueryID) (mgu int, ok bool) {
	for _, id := range component {
		n := g.Node(id)
		if n == nil || len(n.In) < n.Query.PostCount() {
			return 0, false
		}
	}
	st.in.Reset()
	st.du.Reset()
	for _, id := range component {
		n := g.Node(id)
		for _, e := range n.In {
			mgu++
			if err := st.du.UnifyAtoms(e.Head.Atom, e.Post.Atom); err != nil {
				return 0, false
			}
		}
	}
	return mgu, true
}

// matchFast attempts the one-pass dense match; it returns nil when the
// component needs the literal algorithm.
func matchFast(g graph.View, component []ir.QueryID) *MatchResult {
	st := densePool.Get().(*denseState)
	mgu, ok := matchFastCoreInto(st, g, component)
	if !ok {
		densePool.Put(st)
		return nil
	}
	global, err := st.du.Materialize()
	densePool.Put(st)
	if err != nil {
		return nil
	}
	res := &MatchResult{
		Survivors: append(make([]ir.QueryID, 0, len(component)), component...),
		Unifiers:  make(map[ir.QueryID]*unify.Unifier, len(component)),
		Global:    global,
		MGUCalls:  mgu,
	}
	// With no removals, propagation converges every member onto the global
	// unifier's constraints; exposing the global for each survivor imposes
	// exactly the same constraint set downstream.
	for _, id := range component {
		res.Unifiers[id] = global
	}
	return res
}

// matcher carries the state of one literal Algorithm 1 run. It never
// mutates the underlying graph; removals are tracked in an overlay so the
// engine can reuse the graph across incremental rounds. Overlay state is
// keyed by component-local dense indexes (one small map from query ID to
// index, bool slices for the rest) rather than one map per concern.
type matcher struct {
	g       graph.View
	comp    []ir.QueryID
	idx     map[ir.QueryID]int32 // query → dense component-local index
	removed []bool
	inQueue []bool
	u       []*unify.Unifier
	queue   []int32
	res     *MatchResult
	naive   bool // use NaiveMerge (A3 ablation)
}

func matchSlow(g graph.View, component []ir.QueryID, opt Options) *MatchResult {
	n := len(component)
	m := &matcher{
		g:       g,
		comp:    component,
		idx:     make(map[ir.QueryID]int32, n),
		removed: make([]bool, n),
		inQueue: make([]bool, n),
		u:       make([]*unify.Unifier, n),
		res:     &MatchResult{Unifiers: make(map[ir.QueryID]*unify.Unifier)},
		naive:   opt.NaiveMGU,
	}
	for i, id := range component {
		m.idx[id] = int32(i)
		m.u[i] = unify.New()
	}

	// Phase 1 (graph construction residue): initialise each node's unifier
	// from its incoming edges, and remove nodes whose indegree is below
	// their postcondition count — some postcondition has no unifying head.
	for i, id := range component {
		n := g.Node(id)
		if n == nil {
			continue
		}
		if m.removed[i] {
			continue
		}
		if m.liveInDegree(id) < n.Query.PostCount() {
			m.cleanup(int32(i), CauseUnsatisfiedPost)
			continue
		}
		ok := true
		for _, e := range n.In {
			j, member := m.idx[e.From]
			if !member || m.removed[j] {
				continue
			}
			m.res.MGUCalls++
			if _, err := m.u[i].UnifyAtoms(e.Head.Atom, e.Post.Atom); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			m.cleanup(int32(i), CauseClash)
		}
	}
	// Re-check indegrees: cleanups above may have starved other nodes.
	m.sweepStarved()

	// Phase 2: Algorithm 1 — propagate unifiers along edges until fixpoint.
	for i := range component {
		if !m.removed[i] {
			m.enqueue(int32(i))
		}
	}
	for len(m.queue) > 0 {
		pi := m.queue[0]
		m.queue = m.queue[1:]
		m.inQueue[pi] = false
		if m.removed[pi] {
			continue
		}
		m.res.Iterations++
		n := m.g.Node(m.comp[pi])
		if n == nil {
			continue
		}
		for _, e := range n.Out {
			ci, member := m.idx[e.To]
			if !member || m.removed[ci] || m.removed[pi] {
				continue
			}
			m.res.MGUCalls++
			changed, err := m.merge(m.u[ci], m.u[pi])
			if err != nil {
				m.cleanup(ci, CauseClash)
				m.sweepStarved()
				continue
			}
			if changed {
				m.enqueue(ci)
			}
		}
	}

	// Collect survivors in insertion order.
	for i, id := range component {
		if !m.removed[i] && g.Node(id) != nil {
			m.res.Survivors = append(m.res.Survivors, id)
			m.res.Unifiers[id] = m.u[i]
		}
	}
	return m.res
}

func (m *matcher) merge(dst, src *unify.Unifier) (bool, error) {
	if m.naive {
		return dst.NaiveMerge(src)
	}
	return dst.Merge(src)
}

// liveInDegree counts in-edges whose source is a live member of the
// component overlay.
func (m *matcher) liveInDegree(id ir.QueryID) int {
	n := m.g.Node(id)
	if n == nil {
		return 0
	}
	c := 0
	for _, e := range n.In {
		if j, member := m.idx[e.From]; member && !m.removed[j] {
			c++
		}
	}
	return c
}

// enqueue adds a node to the updates queue if absent.
func (m *matcher) enqueue(i int32) {
	if m.inQueue[i] || m.removed[i] {
		return
	}
	m.inQueue[i] = true
	m.queue = append(m.queue, i)
}

// cleanup implements CLEANUP(n): remove the node and all its descendants
// from the overlay and the updates queue (Section 4.1.3). The triggering
// node gets the given cause; descendants get CauseCascade.
func (m *matcher) cleanup(i int32, cause RemovalCause) {
	if m.removed[i] {
		return
	}
	m.removed[i] = true
	m.inQueue[i] = false
	m.res.Removed = append(m.res.Removed, Removal{Query: m.comp[i], Cause: cause})
	for _, d := range m.g.Descendants(m.comp[i]) {
		j, member := m.idx[d]
		if !member || m.removed[j] {
			continue
		}
		m.removed[j] = true
		m.inQueue[j] = false
		m.res.Removed = append(m.res.Removed, Removal{Query: d, Cause: CauseCascade})
	}
}

// sweepStarved removes nodes whose live indegree dropped below their
// postcondition count after cleanups, repeating until stable. Under safety
// each postcondition has at most one feeding head, so once the feeder is
// gone the postcondition is permanently unsatisfied within this workload.
func (m *matcher) sweepStarved() {
	for {
		changed := false
		for i, id := range m.comp {
			if m.removed[i] {
				continue
			}
			n := m.g.Node(id)
			if n == nil {
				continue
			}
			if m.liveInDegree(id) < n.Query.PostCount() {
				m.cleanup(int32(i), CauseCascade)
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// sortRemovals orders removals by query ID for deterministic reporting.
func sortRemovals(rs []Removal) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Query < rs[j].Query })
}
