// Package match implements the evaluation algorithm for entangled queries
// (Section 4 of the paper): the safety check (Section 3.1.1), the UCS check
// (Section 3.1.2), unifier propagation on the unifiability graph
// (Algorithm 1, Section 4.1.4), combined-query construction and
// simplification (Section 4.2), and end-to-end coordinated query answering
// against the memdb substrate.
package match

import (
	"fmt"

	"entangle/internal/graph"
	"entangle/internal/ir"
)

// SafetyViolation records an unsafe query: one of its postcondition atoms
// unifies with two or more head atoms in the workload (Section 3.1.1).
type SafetyViolation struct {
	Query ir.QueryID      // the unsafe query
	Post  ir.Atom         // the offending postcondition atom
	Heads []graph.AtomRef // the ≥2 head atoms it unifies with
}

// String describes the violation.
func (v SafetyViolation) String() string {
	return fmt.Sprintf("query %d: postcondition %s unifies with %d head atoms", v.Query, v.Post, len(v.Heads))
}

// CheckSafety examines a workload and returns a violation for every query
// with a postcondition unifying with more than one head atom. The counted
// heads may belong to several queries or to a single other query ("two head
// atoms of the same query"); a query's own heads are excluded, because a
// query is never its own coordination partner (see graph.AddQuery).
// An empty result means the set is safe.
func CheckSafety(queries []*ir.Query) []SafetyViolation {
	ix := graph.NewIndex()
	for _, q := range queries {
		for hi, h := range q.Heads {
			ix.Add(graph.AtomRef{Query: q.ID, Pos: hi, Atom: h})
		}
	}
	var out []SafetyViolation
	for _, q := range queries {
		for _, p := range q.Posts {
			heads := ix.Lookup(p)
			others := heads[:0]
			for _, h := range heads {
				if h.Query != q.ID {
					others = append(others, h)
				}
			}
			if len(others) > 1 {
				out = append(out, SafetyViolation{Query: q.ID, Post: p, Heads: others})
			}
		}
	}
	return out
}

// EnforceSafety implements the paper's simple removal procedure: iterate
// over the query set, removing every query that has a postcondition
// unifying with more than one head atom, until the remaining set is safe.
// The procedure is not Church-Rosser in general but is efficient and
// deterministic here (queries are scanned in input order each round).
// It returns the surviving queries and the removed ones.
func EnforceSafety(queries []*ir.Query) (kept, removed []*ir.Query) {
	kept = append([]*ir.Query(nil), queries...)
	for {
		viol := CheckSafety(kept)
		if len(viol) == 0 {
			return kept, removed
		}
		bad := make(map[ir.QueryID]bool, len(viol))
		for _, v := range viol {
			bad[v.Query] = true
		}
		next := kept[:0]
		for _, q := range kept {
			if bad[q.ID] {
				removed = append(removed, q)
			} else {
				next = append(next, q)
			}
		}
		kept = next
	}
}

// UnsafePostError builds the rejection for a postcondition unifying with n
// admitted head atoms. Shared by the incremental checker and the engine's
// bulk safety sweep, whose verdict DETAILS must stay byte-identical for the
// same violation (the bulk ≡ batch equivalence contract).
func UnsafePostError(post ir.Atom, q ir.QueryID, n int) error {
	return fmt.Errorf("match: unsafe: postcondition %s of query %d unifies with %d head atoms", post, q, n)
}

// UnsafeHeadError builds the rejection for a head atom that would give an
// admitted query's postcondition a second unifying head (see
// UnsafePostError for the sharing contract).
func UnsafeHeadError(head ir.Atom, q ir.QueryID, post ir.Atom, target ir.QueryID) error {
	return fmt.Errorf("match: unsafe: head %s of query %d would give postcondition %s of query %d multiple matches",
		head, q, post, target)
}

// SafetyChecker admits queries one at a time, maintaining head and
// postcondition indices over the admitted set. A new query is rejected if
// admitting it would make the workload unsafe — either because one of its
// own postconditions unifies with two or more admitted heads, or because one
// of its heads would give an admitted query's postcondition a second
// unifying head. This is the incremental admission test stress-tested in
// the paper's Figure 9 experiment.
type SafetyChecker struct {
	heads *graph.Index // head atoms of admitted queries
	posts *graph.Index // postcondition atoms of admitted queries
	n     int
	// shared marks a checker layered over a unifiability graph's own atom
	// indexes: the graph maintains the entries (AddQuery/RemoveQuery), so
	// this checker's admission bookkeeping must not touch them.
	shared bool
	// Reusable lookup buffers: Check runs on the engine's per-arrival path,
	// so its index probes must not allocate. buf2 exists because the
	// head-side check nests a heads lookup inside a posts lookup.
	buf, buf2 []graph.AtomRef
}

// NewSafetyChecker returns an empty checker.
func NewSafetyChecker() *SafetyChecker {
	return &SafetyChecker{heads: graph.NewIndex(), posts: graph.NewIndex()}
}

// NewSharedSafetyChecker returns a checker that reads the given graph's own
// head/postcondition indexes instead of maintaining a duplicate pair. The
// caller must keep checker admissions and graph membership in lock-step
// (admit ⇒ AddQuery, retire ⇒ RemoveQuery), which is exactly the engine's
// shard discipline; in exchange every atom is indexed once per shard, not
// twice. Admit/AdmitUnchecked/Remove only track the admitted count; the
// index mutations happen through the graph.
func NewSharedSafetyChecker(g *graph.Graph) *SafetyChecker {
	return &SafetyChecker{heads: g.HeadIndex(), posts: g.PostIndex(), shared: true}
}

// Len returns the number of admitted queries.
func (c *SafetyChecker) Len() int { return c.n }

// Check reports whether q can be admitted without violating safety. It does
// not modify the checker. A query's own heads never count against its own
// postconditions (no self-coordination).
func (c *SafetyChecker) Check(q *ir.Query) error {
	// (1) Each of q's postconditions must unify with at most one admitted
	// head (own heads excluded).
	for _, p := range q.Posts {
		n := 0
		c.buf = c.heads.AppendLookup(c.buf[:0], p)
		for _, h := range c.buf {
			if h.Query != q.ID {
				n++
			}
		}
		if n > 1 {
			return UnsafePostError(p, q.ID, n)
		}
	}
	// (2) q's heads must not give any admitted postcondition a second
	// unifying head. Each admitted postcondition currently has 0 or 1
	// unifying heads (invariant); count how many of q's heads would join,
	// so a query contributing two unifying heads at once is caught even
	// when the postcondition currently has none.
	type postKey struct {
		q   ir.QueryID
		pos int
	}
	var added map[postKey]int // lazily allocated: empty on the usual no-match probe
	for _, h := range q.Heads {
		c.buf = c.posts.AppendLookup(c.buf[:0], h)
		for _, pref := range c.buf {
			if pref.Query == q.ID {
				continue
			}
			if added == nil {
				added = make(map[postKey]int)
			}
			k := postKey{pref.Query, pref.Pos}
			added[k]++
			existing := 0
			c.buf2 = c.heads.AppendLookup(c.buf2[:0], pref.Atom)
			for _, eh := range c.buf2 {
				if eh.Query != pref.Query {
					existing++
				}
			}
			if existing+added[k] > 1 {
				return UnsafeHeadError(h, q.ID, pref.Atom, pref.Query)
			}
		}
	}
	return nil
}

// Admit checks q and, on success, adds its atoms to the indices.
func (c *SafetyChecker) Admit(q *ir.Query) error {
	if err := c.Check(q); err != nil {
		return err
	}
	c.AdmitUnchecked(q)
	return nil
}

// AdmitUnchecked adds q's atoms to the indices without re-running the
// safety check. It exists for the engine's shard migration path: a query
// re-homed after a relation-family merge was already vetted by its source
// shard's checker, and atoms of previously separate families cannot unify
// (they share no relation name), so re-checking against the merged
// population is redundant work. Callers outside that setting should use
// Admit.
func (c *SafetyChecker) AdmitUnchecked(q *ir.Query) {
	if !c.shared {
		for hi, h := range q.Heads {
			c.heads.Add(graph.AtomRef{Query: q.ID, Pos: hi, Atom: h})
		}
		for pi, p := range q.Posts {
			c.posts.Add(graph.AtomRef{Query: q.ID, Pos: pi, Atom: p})
		}
	}
	c.n++
}

// Remove deletes a previously admitted query's atoms (for retirement or
// staleness eviction). For a shared checker the graph's RemoveQuery does
// the index work; only the admitted count is adjusted here.
func (c *SafetyChecker) Remove(id ir.QueryID) {
	if !c.shared {
		c.heads.RemoveQuery(id)
		c.posts.RemoveQuery(id)
	}
	c.n--
}

// DropRelation clears the checker indexes' key maps for a relation with no
// live atoms (see graph.Index.DropRelation). Returns false if live atoms
// remain. A shared checker owns no index state of its own, so this reports
// success and leaves the sweep to the graph.
func (c *SafetyChecker) DropRelation(rel string) bool {
	if c.shared {
		return true
	}
	h := c.heads.DropRelation(rel)
	p := c.posts.DropRelation(rel)
	return h && p
}

// IndexKeyCount returns the combined key-map footprint of the checker's own
// indexes (observability for relation-family GC); zero for a shared checker,
// whose footprint is the graph's.
func (c *SafetyChecker) IndexKeyCount() int {
	if c.shared {
		return 0
	}
	return c.heads.KeyCount() + c.posts.KeyCount()
}
