package match

import (
	"fmt"
	"testing"

	"entangle/internal/graph"
	"entangle/internal/ir"
)

func benchPairGraph(b *testing.B, pairs int) (*graph.Graph, [][]ir.QueryID) {
	b.Helper()
	var qs []*ir.Query
	for i := 0; i < pairs; i++ {
		rel := fmt.Sprintf("R%d", i)
		q1 := ir.MustParse(ir.QueryID(2*i+1), fmt.Sprintf("{%s(B, x)} %s(A, x) :- F(x, P)", rel, rel)).RenameApart()
		q2 := ir.MustParse(ir.QueryID(2*i+2), fmt.Sprintf("{%s(A, y)} %s(B, y) :- F(y, P)", rel, rel)).RenameApart()
		qs = append(qs, q1, q2)
	}
	g, err := graph.Build(qs)
	if err != nil {
		b.Fatal(err)
	}
	return g, g.ConnectedComponents()
}

func BenchmarkMatchComponentPair(b *testing.B) {
	g, comps := benchPairGraph(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := MatchComponent(g, comps[0], Options{})
		if len(res.Survivors) != 2 {
			b.Fatal("pair did not match")
		}
	}
}

func BenchmarkMatchAllComponents(b *testing.B) {
	g, comps := benchPairGraph(b, 1000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, comp := range comps {
			MatchComponent(g, comp, Options{})
		}
	}
}

func BenchmarkCheckSafety(b *testing.B) {
	var qs []*ir.Query
	for i := 0; i < 2000; i++ {
		qs = append(qs, ir.MustParse(ir.QueryID(i+1),
			fmt.Sprintf("{R(x, D%d)} R(U%d, D%d) :- F(U%d, x)", i%100, i, (i+7)%100, i)).RenameApart())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CheckSafety(qs)
	}
}

func BenchmarkSafetyCheckerAdmission(b *testing.B) {
	c := NewSafetyChecker()
	for i := 0; i < 2000; i++ {
		q := ir.MustParse(ir.QueryID(i+1),
			fmt.Sprintf("{R(x, Z%d)} R(U%d, D%d) :- F(U%d, x)", i, i, i%100, i)).RenameApart()
		if err := c.Admit(q); err != nil {
			b.Fatal(err)
		}
	}
	probe := ir.MustParse(999999, "{R(x, D7)} R(Probe, X1) :- F(Probe, x)").RenameApart()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Check(probe) // expected to be rejected (many heads share D7)
	}
}
