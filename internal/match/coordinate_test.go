package match

import (
	"math/rand"
	"strings"
	"testing"

	"entangle/internal/ir"
	"entangle/internal/memdb"
	"entangle/internal/unify"
)

// flightsDB is the Figure 1 (a) database.
func flightsDB(t testing.TB) *memdb.DB {
	t.Helper()
	db := memdb.New()
	db.MustCreateTable("F", "fno", "dest")
	db.MustCreateTable("A", "fno", "airline")
	for _, r := range [][]string{{"122", "Paris"}, {"123", "Paris"}, {"134", "Paris"}, {"136", "Rome"}} {
		db.MustInsert("F", r...)
	}
	for _, r := range [][]string{{"122", "United"}, {"123", "United"}, {"134", "Lufthansa"}, {"136", "Alitalia"}} {
		db.MustInsert("A", r...)
	}
	return db
}

func kramerJerryQueries() []*ir.Query {
	return []*ir.Query{
		ir.MustParse(1, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
		ir.MustParse(2, "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris) ∧ A(y, United)"),
	}
}

func TestCoordinateRunningExample(t *testing.T) {
	// The paper's introduction: Kramer and Jerry must receive the same
	// United flight to Paris — 122 or 123.
	db := flightsDB(t)
	out, err := Coordinate(db, kramerJerryQueries(), CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %v, rejected = %v", out.Answers, out.Rejected)
	}
	kr := out.Answers[1].Tuples[0]
	je := out.Answers[2].Tuples[0]
	if kr.Rel != "R" || !kr.Args[0].Equal(ir.Const("Kramer")) {
		t.Fatalf("kramer answer = %v", kr)
	}
	if je.Rel != "R" || !je.Args[0].Equal(ir.Const("Jerry")) {
		t.Fatalf("jerry answer = %v", je)
	}
	fk, fj := kr.Args[1].Value, je.Args[1].Value
	if fk != fj {
		t.Fatalf("flights differ: Kramer %s, Jerry %s — coordination failed", fk, fj)
	}
	if fk != "122" && fk != "123" {
		t.Fatalf("flight %s is not a United flight to Paris", fk)
	}
	if out.Components != 1 {
		t.Fatalf("components = %d", out.Components)
	}
	if len(out.Combined) != 1 {
		t.Fatalf("combined queries = %d", len(out.Combined))
	}
}

func TestCoordinateRandomChoiceCoversBothFlights(t *testing.T) {
	db := flightsDB(t)
	seen := map[string]bool{}
	for seed := int64(0); seed < 64 && len(seen) < 2; seed++ {
		out, err := Coordinate(db, kramerJerryQueries(), CoordinateOptions{Rand: rand.New(rand.NewSource(seed))})
		if err != nil {
			t.Fatal(err)
		}
		seen[out.Answers[1].Tuples[0].Args[1].Value] = true
	}
	if len(seen) != 2 {
		t.Fatalf("CHOOSE 1 randomness never varied: %v", seen)
	}
}

func TestCoordinateNoData(t *testing.T) {
	// Empty database: matching succeeds but evaluation returns no rows.
	db := memdb.New()
	db.MustCreateTable("F", "fno", "dest")
	db.MustCreateTable("A", "fno", "airline")
	out, err := Coordinate(db, kramerJerryQueries(), CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 0 {
		t.Fatalf("answers on empty db = %v", out.Answers)
	}
	for _, r := range out.Rejected {
		if r.Cause != CauseNoData {
			t.Fatalf("cause = %v, want no-data", r.Cause)
		}
	}
	if len(out.Rejected) != 2 {
		t.Fatalf("rejected = %v", out.Rejected)
	}
}

func TestCoordinateLoneQueryRejected(t *testing.T) {
	db := flightsDB(t)
	out, err := Coordinate(db, []*ir.Query{
		ir.MustParse(1, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
	}, CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 0 || len(out.Rejected) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out.Rejected[0].Cause != CauseUnsatisfiedPost {
		t.Fatalf("cause = %v", out.Rejected[0].Cause)
	}
}

func TestCoordinatePostconditionFreeQuery(t *testing.T) {
	// {} R(Kramer, x) :- F(x, Paris) needs no coordination: answered alone.
	db := flightsDB(t)
	out, err := Coordinate(db, []*ir.Query{
		ir.MustParse(1, "{} R(Kramer, x) :- F(x, Paris)"),
	}, CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, ok := out.Answers[1]
	if !ok {
		t.Fatalf("no answer: %+v", out)
	}
	dest := a.Tuples[0].Args[1].Value
	if dest != "122" && dest != "123" && dest != "134" {
		t.Fatalf("answer = %v", a)
	}
}

func TestCoordinateUnsafeRejectedByDefault(t *testing.T) {
	db := flightsDB(t)
	db.MustCreateTable("Friend", "a", "b")
	db.MustInsert("Friend", "Jerry", "Kramer")
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
		ir.MustParse(2, "{R(Jerry, y)} R(Elaine, y) :- F(y, Paris)"),
		ir.MustParse(3, "{R(f, z)} R(Jerry, z) :- F(z, w) ∧ Friend(Jerry, f)"),
	}
	if _, err := Coordinate(db, qs, CoordinateOptions{}); err == nil || !strings.Contains(err.Error(), "unsafe") {
		t.Fatalf("expected unsafe error, got %v", err)
	}
	// With enforcement, query 3 is dropped; 1 and 2 remain but each lacks
	// its partner, so everything is rejected without error.
	out, err := Coordinate(db, qs, CoordinateOptions{EnforceSafety: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.UnsafeRemoved) != 1 || out.UnsafeRemoved[0] != 3 {
		t.Fatalf("unsafe removed = %v", out.UnsafeRemoved)
	}
	if len(out.Answers) != 0 {
		t.Fatalf("answers = %v", out.Answers)
	}
}

func TestCoordinateUCS(t *testing.T) {
	// Figure 3 (b): Frank's query violates UCS.
	db := flightsDB(t)
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
		ir.MustParse(2, "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)"),
		ir.MustParse(3, "{R(Jerry, z)} R(Frank, z) :- F(z, Paris) ∧ A(z, United)"),
	}
	if _, err := Coordinate(db, qs, CoordinateOptions{RequireUCS: true}); err == nil || !strings.Contains(err.Error(), "UCS") {
		t.Fatalf("expected UCS error, got %v", err)
	}
	out, err := Coordinate(db, qs, CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.UCSViolations) != 1 || out.UCSViolations[0] != 3 {
		t.Fatalf("UCS violations = %v", out.UCSViolations)
	}
	// All three can coordinate on a United Paris flight here, so the
	// matched structure answers all three together.
	if len(out.Answers) != 3 {
		t.Fatalf("answers = %v rejected = %v", out.Answers, out.Rejected)
	}
	f := out.Answers[1].Tuples[0].Args[1].Value
	for id, a := range out.Answers {
		if a.Tuples[0].Args[1].Value != f {
			t.Fatalf("query %d got flight %s, others %s", id, a.Tuples[0].Args[1].Value, f)
		}
	}
	if f != "122" && f != "123" {
		t.Fatalf("three-way coordination must pick a United flight, got %s", f)
	}
}

func TestCoordinateIndependentComponentsInParallel(t *testing.T) {
	db := flightsDB(t)
	var qs []*ir.Query
	// 50 independent pairs, each coordinating on ANSWER relation R<i>.
	for i := 0; i < 50; i++ {
		rel := "R" + string(rune('A'+i%26)) + string(rune('A'+i/26))
		a := ir.MustParse(ir.QueryID(2*i+1), "{"+rel+"(Jerry, x)} "+rel+"(Kramer, x) :- F(x, Paris)")
		b := ir.MustParse(ir.QueryID(2*i+2), "{"+rel+"(Kramer, y)} "+rel+"(Jerry, y) :- F(y, Paris)")
		qs = append(qs, a, b)
	}
	out, err := Coordinate(db, qs, CoordinateOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Components != 50 {
		t.Fatalf("components = %d", out.Components)
	}
	if len(out.Answers) != 100 {
		t.Fatalf("answers = %d", len(out.Answers))
	}
	// Each pair coordinated internally.
	for i := 0; i < 50; i++ {
		a := out.Answers[ir.QueryID(2*i+1)].Tuples[0].Args[1].Value
		b := out.Answers[ir.QueryID(2*i+2)].Tuples[0].Args[1].Value
		if a != b {
			t.Fatalf("pair %d mismatched: %s vs %s", i, a, b)
		}
	}
}

func TestCoordinateDuplicateIDs(t *testing.T) {
	db := flightsDB(t)
	qs := []*ir.Query{
		ir.MustParse(1, "{} R(A, x) :- F(x, Paris)"),
		ir.MustParse(1, "{} R(B, y) :- F(y, Paris)"),
	}
	if _, err := Coordinate(db, qs, CoordinateOptions{}); err == nil {
		t.Fatal("duplicate IDs must be rejected")
	}
}

func TestCoordinateInvalidQuery(t *testing.T) {
	db := flightsDB(t)
	bad := &ir.Query{ID: 1, Heads: []ir.Atom{ir.NewAtom("R", ir.Var("z"))}}
	if _, err := Coordinate(db, []*ir.Query{bad}, CoordinateOptions{}); err == nil {
		t.Fatal("invalid query must be rejected")
	}
}

func TestCombinedQueryShape(t *testing.T) {
	// The combined Kramer/Jerry query must ask for a United flight to
	// Paris with both head tuples (Section 3.2's example).
	db := flightsDB(t)
	out, err := Coordinate(db, kramerJerryQueries(), CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cq := out.Combined[0]
	if len(cq.Heads) != 2 || len(cq.Body) != 3 {
		t.Fatalf("combined query = %s", cq)
	}
	s := cq.String()
	for _, want := range []string{"R(Kramer", "R(Jerry", "F(", "A(", "United"} {
		if !strings.Contains(s, want) {
			t.Errorf("combined query %q missing %q", s, want)
		}
	}
}

func TestVerifyCoordinationHolds(t *testing.T) {
	// Whatever Coordinate returns must satisfy the coordinating-set
	// property of Section 2.3: head set ⊇ grounded postconditions.
	db := flightsDB(t)
	qs := kramerJerryQueries()
	out, err := Coordinate(db, qs, CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	headSet := map[string]bool{}
	var answers []ir.Answer
	for _, a := range out.Answers {
		answers = append(answers, a)
		for _, tup := range a.Tuples {
			headSet[tup.String()] = true
		}
	}
	// Re-derive postconditions: ground each query's posts with the shared
	// flight number and check membership.
	f := out.Answers[1].Tuples[0].Args[1].Value
	for _, q := range qs {
		for _, p := range q.Posts {
			g := p.Apply(ir.Substitution{"x": ir.Const(f), "y": ir.Const(f)})
			if !headSet[g.String()] {
				t.Fatalf("postcondition %s not satisfied by answer heads %v", g, headSet)
			}
		}
	}
	rel := AnswerRelation(answers)
	if len(rel["R"]) != 2 {
		t.Fatalf("answer relation = %v", rel)
	}
}

func TestThreeWayCycleCoordination(t *testing.T) {
	// Section 5.3.2's three-way cycle: Jerry→Kramer→Elaine→Jerry.
	db := flightsDB(t)
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Kramer, x)} R(Jerry, x) :- F(x, Paris)"),
		ir.MustParse(2, "{R(Elaine, y)} R(Kramer, y) :- F(y, Paris)"),
		ir.MustParse(3, "{R(Jerry, z)} R(Elaine, z) :- F(z, Paris)"),
	}
	out, err := Coordinate(db, qs, CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 3 {
		t.Fatalf("answers = %v rejected = %v", out.Answers, out.Rejected)
	}
	f := out.Answers[1].Tuples[0].Args[1].Value
	for id := ir.QueryID(1); id <= 3; id++ {
		if got := out.Answers[id].Tuples[0].Args[1].Value; got != f {
			t.Fatalf("q%d flight %s != %s", id, got, f)
		}
	}
}

func TestGlobalMGUFailure(t *testing.T) {
	// Exercise BuildCombined's rejection path directly with two survivors
	// whose unifiers are incompatible (x = 1 vs x = 2 on a shared
	// variable). Under safety this cannot arise from MatchComponent, but
	// BuildCombined must still defend against it (Section 4.2: "If such a
	// U cannot be computed, evaluation fails for Q′").
	u1 := unify.New()
	if _, err := u1.Union(ir.Var("shared"), ir.Const("1")); err != nil {
		t.Fatal(err)
	}
	u2 := unify.New()
	if _, err := u2.Union(ir.Var("shared"), ir.Const("2")); err != nil {
		t.Fatal(err)
	}
	res := &MatchResult{
		Survivors: []ir.QueryID{1, 2},
		Unifiers:  map[ir.QueryID]*unify.Unifier{1: u1, 2: u2},
	}
	queries := map[ir.QueryID]*ir.Query{
		1: ir.MustParse(1, "{} R(x) :- D(x)").RenameApart(),
		2: ir.MustParse(2, "{} R(y) :- D(y)").RenameApart(),
	}
	if _, _, err := BuildCombined(queries, res); err == nil {
		t.Fatal("incompatible unifiers must fail the component")
	}
}
