package match

import (
	"encoding/binary"
	"fmt"
	"sync"

	"entangle/internal/ir"
	"entangle/internal/memdb"
)

// evalScratch is the pooled state of one compiled component evaluation: the
// plan builder and execution scratch (memdb), the dense-root → binding-slot
// map, the shape-key and parameter buffers for the plan cache, and the
// CHOOSE stream. Pooled alongside the matcher's dense scratch, it makes the
// whole answer path — match, compile (or cache hit), execute, ground —
// allocation-free in steady state except for the answer tuples themselves.
type evalScratch struct {
	pb      memdb.PlanBuilder
	ex      memdb.ExecState
	slotOf  []int32 // dense-unifier root id → plan slot, -1 unassigned
	touched []int32 // roots assigned this run, for O(assigned) reset
	nSlots  int32
	rng     memdb.SplitMix
	key     []byte   // component shape key, rebuilt per evaluation
	params  []string // constant values in parameter-index order
}

var evalPool = sync.Pool{New: func() any { return new(evalScratch) }}

func (sc *evalScratch) reset() {
	sc.pb.Reset()
	for _, r := range sc.touched {
		sc.slotOf[r] = -1
	}
	sc.touched = sc.touched[:0]
	sc.nSlots = 0
}

// slot returns the plan slot for a dense-unifier class root, assigning the
// next dense slot on first sight.
func (sc *evalScratch) slot(root int32) int32 {
	for int32(len(sc.slotOf)) <= root {
		sc.slotOf = append(sc.slotOf, -1)
	}
	s := sc.slotOf[root]
	if s < 0 {
		s = sc.nSlots
		sc.nSlots++
		sc.slotOf[root] = s
		sc.touched = append(sc.touched, root)
	}
	return s
}

// assignedSlot is the read-only form of slot, for head grounding: -1 when
// the root never occurred in the compiled body.
func (sc *evalScratch) assignedSlot(root int32) int32 {
	if root < int32(len(sc.slotOf)) {
		return sc.slotOf[root]
	}
	return -1
}

// Shape-key argument markers. Binding slots encode as markSlot plus the
// slot's uvarint; the markers sit above the one-byte uvarint range, so a
// prefix parse of the key can never confuse a marker with a small length or
// slot byte.
const (
	markParam = 0xFF // constant position (late-bound parameter)
	markSlot  = 0xFE // variable position; followed by uvarint slot id
)

// evaluateDense is the compiled fast path for a fully matched component:
// the combined query's body compiles straight off the dense unifier (class
// constants → parameter descriptors, class roots → shared binding slots)
// through the pooled plan builder, executes with the pooled scratch, and
// the survivors' heads are grounded directly from the winning binding row.
// No CombinedQuery, map-backed unifier or ir.Substitution exists on this
// path. Takes ownership of nothing; the caller still owns ds.
//
// When plans is non-nil, the walk additionally builds the component's shape
// key — stats epoch, then per atom the relation name, arg count, and a
// param marker or binding-slot id per argument — into reused scratch. On a
// hit the cached plan executes directly and the whole compile step
// (PlanBuilder.Finish's join-order simulation) is skipped; constants were
// compiled to parameters, so the same plan serves every component of this
// shape and only the parameter values differ per execution.
//
// Both scratches (ds, sc) belong to the caller — pooled by the
// EvaluateComponentFast wrapper, pinned per worker by the engine's eval
// pool — and are reset here before use.
func evaluateDense(db *memdb.DB, ds *denseState, sc *evalScratch, byID map[ir.QueryID]*ir.Query, component []ir.QueryID, seed int64, plans *memdb.PlanCache) (answers []ir.Answer, rejected []Removal, err error) {
	sc.reset()

	caching := plans != nil
	sc.params = sc.params[:0]
	if caching {
		sc.key = binary.AppendUvarint(sc.key[:0], db.StatsEpoch())
	}
	for _, id := range component {
		q, ok := byID[id]
		if !ok {
			return nil, nil, fmt.Errorf("match: survivor %d missing from query map", id)
		}
		for _, a := range q.Body {
			sc.pb.StartAtom(a.Rel, a)
			if caching {
				sc.key = binary.AppendUvarint(sc.key, uint64(len(a.Rel)))
				sc.key = append(sc.key, a.Rel...)
				sc.key = binary.AppendUvarint(sc.key, uint64(len(a.Args)))
			}
			for _, t := range a.Args {
				var cval string
				isConst := t.IsConst()
				if isConst {
					cval = t.Value
				} else {
					var root int32
					root, cval, isConst = ds.du.ResolveTerm(t)
					if !isConst {
						s := sc.slot(root)
						sc.pb.AddVar(s)
						if caching {
							sc.key = append(sc.key, markSlot)
							sc.key = binary.AppendUvarint(sc.key, uint64(s))
						}
						continue
					}
				}
				if caching {
					sc.pb.AddParam()
					sc.params = append(sc.params, cval)
					sc.key = append(sc.key, markParam)
				} else {
					sc.pb.AddConst(cval)
				}
			}
		}
	}
	var p *memdb.Plan
	if caching {
		p = plans.Get(sc.key)
		if p == nil {
			p = plans.Add(sc.key, sc.pb.Finish(db, int(sc.nSlots)))
		}
		sc.ex.SetParams(sc.params)
	} else {
		p = sc.pb.Finish(db, int(sc.nSlots))
		sc.ex.SetParams(nil)
	}

	var rng memdb.Rng
	if seed != 0 {
		sc.rng = memdb.NewSplitMix(seed)
		rng = &sc.rng
	}
	n, err := db.ExecPlan(p, &sc.ex, memdb.EvalOptions{Limit: 1, Rand: rng})
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		rejected = make([]Removal, 0, len(component))
		for _, id := range component {
			rejected = append(rejected, Removal{Query: id, Cause: CauseNoData})
		}
		return nil, rejected, nil
	}
	row := sc.ex.Row(0)

	// Ground every member's heads from the winning row. The tuples escape to
	// the caller, so they are the one unavoidable allocation of this path —
	// carved from two backing arrays, ir.Clone-style.
	nHeads, nArgs := 0, 0
	for _, id := range component {
		q := byID[id]
		nHeads += len(q.Heads)
		for _, h := range q.Heads {
			nArgs += len(h.Args)
		}
	}
	answers = make([]ir.Answer, 0, len(component))
	tuples := make([]ir.Atom, nHeads)
	args := make([]ir.Term, nArgs)
	ti, ai := 0, 0
	for _, id := range component {
		q := byID[id]
		lo := ti
		for _, h := range q.Heads {
			dst := args[ai : ai+len(h.Args) : ai+len(h.Args)]
			ai += len(h.Args)
			for k, t := range h.Args {
				if t.IsConst() {
					dst[k] = t
					continue
				}
				root, cval, isConst := ds.du.ResolveTerm(t)
				if isConst {
					dst[k] = ir.Const(cval)
					continue
				}
				s := sc.assignedSlot(root)
				if s < 0 {
					// The valuation must bind every head variable's class; an
					// unbound one means the body failed to range-restrict it,
					// which Validate prevents upstream.
					return nil, nil, fmt.Errorf("match: head %s of query %d not grounded by combined answer", h, id)
				}
				dst[k] = ir.Const(row[s])
			}
			tuples[ti] = ir.Atom{Rel: h.Rel, Args: dst}
			ti++
		}
		answers = append(answers, ir.Answer{QueryID: id, Tuples: tuples[lo:ti:ti]})
	}
	return answers, nil, nil
}
