package match

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"entangle/internal/graph"
	"entangle/internal/ir"
	"entangle/internal/memdb"
)

func answersKey(ans []ir.Answer) string {
	parts := make([]string, 0, len(ans))
	for _, a := range ans {
		parts = append(parts, fmt.Sprintf("q%d⇒%s", a.QueryID, ir.FormatAtoms(a.Tuples)))
	}
	return strings.Join(parts, " | ")
}

func removalsKey(rs []Removal) string {
	cp := append([]Removal(nil), rs...)
	sortRemovals(cp)
	parts := make([]string, 0, len(cp))
	for _, r := range cp {
		parts = append(parts, fmt.Sprintf("q%d:%s", r.Query, r.Cause))
	}
	return strings.Join(parts, ",")
}

// TestEvaluateComponentFastLegacyParity runs the compiled dense path and the
// LegacyEval pipeline over the same components and seeds and requires
// identical answers (tuples included — the fixed-seed CHOOSE draw must land
// on the same valuation) and identical rejection sets. Shapes cover a
// multi-candidate pair (draws matter), a join-variable pair, a component
// that evaluates to zero rows, and a three-member chain.
func TestEvaluateComponentFastLegacyParity(t *testing.T) {
	db := memdb.New()
	db.MustCreateTable("F", "fno", "dest")
	for i, dest := range []string{"Rome", "Paris", "Paris", "Paris", "Oslo", "Paris"} {
		db.MustInsert("F", fmt.Sprintf("1%d", i), dest)
	}
	db.MustCreateTable("U", "u", "city")
	db.MustInsert("U", "ann", "ith")
	db.MustInsert("U", "bob", "ith")
	db.MustInsert("U", "cat", "ith")

	shapes := []struct {
		name string
		qs   []string
	}{
		{"pair many candidates", []string{
			"{R(Bob, x)} R(Ann, x) :- F(x, Paris)",
			"{R(Ann, y)} R(Bob, y) :- F(y, Paris)",
		}},
		{"pair join vars", []string{
			"{R('bob', c)} R('ann', c) :- U('ann', c), U('bob', c)",
			"{R('ann', d)} R('bob', d) :- U('bob', d), U('ann', d)",
		}},
		{"pair no data", []string{
			"{R(Bob, x)} R(Ann, x) :- F(x, Nowhere)",
			"{R(Ann, y)} R(Bob, y) :- F(y, Nowhere)",
		}},
		{"three-way cycle", []string{
			"{R(B, x)} R(A, x) :- F(x, Paris)",
			"{R(C, y)} R(B, y) :- F(y, Paris)",
			"{R(A, z)} R(C, z) :- F(z, Paris)",
		}},
	}

	for _, sh := range shapes {
		qs := make([]*ir.Query, len(sh.qs))
		byID := make(map[ir.QueryID]*ir.Query, len(sh.qs))
		for i, src := range sh.qs {
			q := ir.MustParse(ir.QueryID(i+1), src).RenameApart()
			qs[i] = q
			byID[q.ID] = q
		}
		g, err := graph.Build(qs)
		if err != nil {
			t.Fatal(err)
		}
		comps := g.ConnectedComponents()
		if len(comps) != 1 {
			t.Fatalf("%s: components = %v", sh.name, comps)
		}
		answeredOnce := false
		for seed := int64(0); seed < 40; seed++ {
			ansC, rejC, errC := EvaluateComponentFast(db, g, comps[0], byID, seed, Options{})
			ansL, rejL, errL := EvaluateComponentFast(db, g, comps[0], byID, seed, Options{LegacyEval: true})
			if (errC == nil) != (errL == nil) {
				t.Fatalf("%s seed %d: error mismatch: %v vs %v", sh.name, seed, errC, errL)
			}
			if ka, kl := answersKey(ansC), answersKey(ansL); ka != kl {
				t.Fatalf("%s seed %d: answers differ:\ncompiled %s\nlegacy   %s", sh.name, seed, ka, kl)
			}
			if ka, kl := removalsKey(rejC), removalsKey(rejL); ka != kl {
				t.Fatalf("%s seed %d: rejections differ: %q vs %q", sh.name, seed, ka, kl)
			}
			if len(ansC) > 0 {
				answeredOnce = true
			}
		}
		if sh.name != "pair no data" && !answeredOnce {
			t.Fatalf("%s: never answered; parity is vacuous", sh.name)
		}
	}
}

// TestEvaluateComponentFastDrawSpread checks the compiled path actually
// randomises: across seeds, the multi-candidate pair must answer with more
// than one distinct flight (CHOOSE 1 "chosen at random", Section 2.1).
func TestEvaluateComponentFastDrawSpread(t *testing.T) {
	db := memdb.New()
	db.MustCreateTable("F", "fno", "dest")
	db.MustInsert("F", "122", "Paris")
	db.MustInsert("F", "123", "Paris")
	db.MustInsert("F", "134", "Paris")
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Bob, x)} R(Ann, x) :- F(x, Paris)").RenameApart(),
		ir.MustParse(2, "{R(Ann, y)} R(Bob, y) :- F(y, Paris)").RenameApart(),
	}
	byID := map[ir.QueryID]*ir.Query{1: qs[0], 2: qs[1]}
	g, err := graph.Build(qs)
	if err != nil {
		t.Fatal(err)
	}
	comp := g.ConnectedComponents()[0]
	seen := map[string]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		ans, _, err := EvaluateComponentFast(db, g, comp, byID, seed, Options{})
		if err != nil || len(ans) != 2 {
			t.Fatalf("seed %d: answers=%v err=%v", seed, ans, err)
		}
		seen[ans[0].Tuples[0].Args[1].Value] = true
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) < 2 {
		t.Fatalf("compiled CHOOSE always picked the same flight: %v", keys)
	}
	for _, f := range keys {
		if f != "122" && f != "123" && f != "134" {
			t.Fatalf("chose non-Paris flight %s", f)
		}
	}
}
