package match

import (
	"testing"

	"entangle/internal/graph"
	"entangle/internal/ir"
	"entangle/internal/memdb"
)

// benchPairGraphFrom builds the unifiability graph of already renamed-apart
// queries and returns it with its connected components.
func benchPairGraphFrom(t *testing.T, qs []*ir.Query) (*graph.Graph, [][]ir.QueryID) {
	t.Helper()
	g, err := graph.Build(qs)
	if err != nil {
		t.Fatal(err)
	}
	return g, g.ConnectedComponents()
}

// TestMatchComponentAllocs is the allocation regression guard for the
// matcher's dense fast path on a fixed social two-way component (the
// coordinating-pair shape of the paper's Figure 6 workload). The bound
// leaves headroom over the measured ~16 allocs (result slices and the
// materialised global unifier); the map-overlay matcher sat above 60, so a
// fast-path regression trips this immediately.
func TestMatchComponentAllocs(t *testing.T) {
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Bob, x)} R(Ann, x) :- F(x, Paris)").RenameApart(),
		ir.MustParse(2, "{R(Ann, y)} R(Bob, y) :- F(y, Paris)").RenameApart(),
	}
	g, comps := benchPairGraphFrom(t, qs)
	if len(comps) != 1 {
		t.Fatalf("components = %v", comps)
	}
	// Warm the dense-scratch pool.
	if res := MatchComponent(g, comps[0], Options{}); len(res.Survivors) != 2 {
		t.Fatalf("survivors = %v", res.Survivors)
	}
	avg := testing.AllocsPerRun(200, func() {
		res := MatchComponent(g, comps[0], Options{})
		if len(res.Survivors) != 2 {
			t.Fatal("pair did not match")
		}
	})
	if avg > 24 {
		t.Fatalf("MatchComponent allocates %.1f allocs/op, want ≤ 24", avg)
	}
}

// TestEvaluateComponentFastAllocs guards the whole compiled answer path at
// the match layer: dense matching, plan compilation off the interned
// unifier, execution, and head grounding for a coordinating pair. Only the
// escaping answer tuples (and the two MatchResult-free slices backing them)
// may allocate; the budget leaves headroom over the measured handful for
// toolchain drift. The pre-compilation pipeline sat near 90 allocs here.
func TestEvaluateComponentFastAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are distorted under -race: sync.Pool randomly drops Put items, so the pooled evaluation scratch re-allocates")
	}
	db := memdb.New()
	db.MustCreateTable("F", "fno", "dest")
	db.MustInsert("F", "121", "Rome")
	db.MustInsert("F", "122", "Paris")
	db.MustInsert("F", "123", "Paris")
	qs := []*ir.Query{
		ir.MustParse(1, "{R(Bob, x)} R(Ann, x) :- F(x, Paris)").RenameApart(),
		ir.MustParse(2, "{R(Ann, y)} R(Bob, y) :- F(y, Paris)").RenameApart(),
	}
	g, comps := benchPairGraphFrom(t, qs)
	byID := map[ir.QueryID]*ir.Query{1: qs[0], 2: qs[1]}
	// Warm the dense and evaluation scratch pools (and the probe index).
	if ans, _, err := EvaluateComponentFast(db, g, comps[0], byID, 7, Options{}); err != nil || len(ans) != 2 {
		t.Fatalf("warm-up: answers=%v err=%v", ans, err)
	}
	avg := testing.AllocsPerRun(200, func() {
		ans, _, err := EvaluateComponentFast(db, g, comps[0], byID, 7, Options{})
		if err != nil || len(ans) != 2 {
			t.Fatal("pair did not answer")
		}
	})
	if avg > 12 {
		t.Fatalf("EvaluateComponentFast allocates %.1f allocs/op, want ≤ 12", avg)
	}
}
