package match

import (
	"fmt"

	"entangle/internal/ir"
	"entangle/internal/unify"
)

// BuildCombined constructs the combined query q* of Section 4.2 from the
// survivors of a matched component:
//
//	⋀ Hi :- ⋀ Bi ∧ ϕU
//
// queries maps IDs to the (renamed-apart) queries. It first computes the
// global unifier U = mgu({U(qi)}); if none exists the whole component is
// rejected and an error is returned (the caller marks every member with
// CauseGlobalMGU).
func BuildCombined(queries map[ir.QueryID]*ir.Query, res *MatchResult) (*ir.CombinedQuery, *unify.Unifier, error) {
	if len(res.Survivors) == 0 {
		return nil, nil, fmt.Errorf("match: no surviving queries to combine")
	}
	global := res.Global
	if global == nil {
		global = unify.New()
		for _, id := range res.Survivors {
			if _, err := global.Merge(res.Unifiers[id]); err != nil {
				return nil, nil, fmt.Errorf("match: no global unifier for component: %w", err)
			}
		}
	}
	cq := &ir.CombinedQuery{}
	for _, id := range res.Survivors {
		q, ok := queries[id]
		if !ok {
			return nil, nil, fmt.Errorf("match: survivor %d missing from query map", id)
		}
		cq.Members = append(cq.Members, id)
		cq.Heads = append(cq.Heads, q.Heads...)
		cq.Body = append(cq.Body, q.Body...)
	}
	cq.Eq = global.Equalities()
	return cq, global, nil
}

// Simplify rewrites a combined query using the information in ϕU
// (Section 4.2's final simplification step): every variable is replaced by
// its class constant when one exists, or by the class's canonical
// representative variable otherwise, after which the explicit equality atoms
// are redundant and dropped.
func Simplify(cq *ir.CombinedQuery, global *unify.Unifier) *ir.CombinedQuery {
	s := global.Substitution()
	out := &ir.CombinedQuery{Members: append([]ir.QueryID(nil), cq.Members...)}
	out.Heads = make([]ir.Atom, len(cq.Heads))
	for i, a := range cq.Heads {
		out.Heads[i] = a.Apply(s)
	}
	out.Body = make([]ir.Atom, len(cq.Body))
	for i, a := range cq.Body {
		out.Body[i] = a.Apply(s)
	}
	return out
}

// SplitAnswers turns one valuation of the (simplified) combined query into
// per-query answers: for each member query, its head atoms are grounded
// through the global unifier's substitution composed with the valuation.
// Every member query receives exactly one answer (the CHOOSE 1 semantics).
func SplitAnswers(queries map[ir.QueryID]*ir.Query, members []ir.QueryID, global *unify.Unifier, val ir.Substitution) ([]ir.Answer, error) {
	s := global.Substitution()
	var out []ir.Answer
	for _, id := range members {
		q := queries[id]
		ans := ir.Answer{QueryID: id}
		for _, h := range q.Heads {
			g := h.Apply(s).Apply(val)
			if !g.IsGround() {
				// The valuation must bind every representative variable;
				// a non-ground head means the combined query's body failed
				// to range-restrict it, which Validate prevents upstream.
				return nil, fmt.Errorf("match: head %s of query %d not grounded by combined answer", h, id)
			}
			ans.Tuples = append(ans.Tuples, g)
		}
		out = append(out, ans)
	}
	return out, nil
}

// AnswerRelation materialises the answer relation(s) from a set of answers:
// the union of all head atoms, grouped by relation name (Section 2.3). The
// result maps relation name to ground tuples.
func AnswerRelation(answers []ir.Answer) map[string][]ir.Atom {
	out := make(map[string][]ir.Atom)
	for _, a := range answers {
		for _, t := range a.Tuples {
			out[t.Rel] = append(out[t.Rel], t)
		}
	}
	return out
}

// VerifyCoordination checks the defining property of a coordinating set
// (Section 2.3): if all the head atoms of the answers are combined into a
// set, that set must contain every postcondition atom (grounded through the
// same valuation machinery). Used by tests and the CSP cross-validation.
func VerifyCoordination(queries map[ir.QueryID]*ir.Query, answers []ir.Answer, global *unify.Unifier, val ir.Substitution) error {
	s := global.Substitution()
	headSet := make(map[string]bool)
	for _, a := range answers {
		for _, t := range a.Tuples {
			headSet[t.String()] = true
		}
	}
	for _, a := range answers {
		q := queries[a.QueryID]
		for _, p := range q.Posts {
			g := p.Apply(s).Apply(val)
			if !g.IsGround() {
				return fmt.Errorf("match: postcondition %s of query %d not grounded", p, a.QueryID)
			}
			if !headSet[g.String()] {
				return fmt.Errorf("match: postcondition %s of query %d not satisfied by any answer head", g, a.QueryID)
			}
		}
	}
	return nil
}
