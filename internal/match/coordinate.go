package match

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"entangle/internal/graph"
	"entangle/internal/ir"
	"entangle/internal/memdb"
	"entangle/internal/unify"
)

// CoordinateOptions tunes the end-to-end coordination pipeline.
type CoordinateOptions struct {
	// EnforceSafety removes unsafe queries instead of failing the batch.
	EnforceSafety bool
	// RequireUCS rejects the batch if the uniqueness-of-coordination-
	// structure property does not hold (Section 3.1.2). When false, UCS
	// violations are reported in the outcome but evaluation proceeds (the
	// algorithm then answers the maximal matched structure, which may leave
	// some locally-coordinable subsets unanswered, as Figure 3 (b) warns).
	RequireUCS bool
	// Parallelism bounds concurrent component evaluation; 0 means
	// GOMAXPROCS. Partitioning makes components independent (Section 4.1.2).
	Parallelism int
	// Rand seeds the CHOOSE 1 random choice; nil picks the first valuation
	// deterministically.
	Rand *rand.Rand
	// Matching options (ablations).
	Match Options
}

// Outcome reports the result of coordinated answering of a batch.
type Outcome struct {
	// Answers holds one answer per successfully coordinated query.
	Answers map[ir.QueryID]ir.Answer
	// Rejected lists queries that could not be answered, with causes.
	Rejected []Removal
	// UnsafeRemoved lists queries dropped by safety enforcement.
	UnsafeRemoved []ir.QueryID
	// UCSViolations lists queries breaking the UCS property (informational
	// unless RequireUCS).
	UCSViolations []ir.QueryID
	// Combined holds the combined query evaluated for each component that
	// produced answers (diagnostic; order follows component order).
	Combined []*ir.CombinedQuery
	// Components is the number of connected components processed.
	Components int
}

// CauseNoData marks queries whose combined query evaluated to zero rows on
// the current database snapshot.
const CauseNoData RemovalCause = 100

// CauseUnsafe marks queries removed by the safety enforcement pre-pass.
const CauseUnsafe RemovalCause = 101

// CauseEvalError marks queries whose component evaluation itself failed
// (plan execution error, not an empty result). The Removal's Detail carries
// the error text. Distinct from CauseNoData so operators can tell a broken
// evaluation from a legitimately unmatched workload.
const CauseEvalError RemovalCause = 102

// Coordinate performs coordinated query answering for a batch of entangled
// queries (set-at-a-time mode): safety enforcement, unifiability-graph
// construction, partitioning, per-component matching (Algorithm 1),
// combined-query construction and evaluation on db, and answer splitting.
//
// The database must not change during the call (Section 2.3: "it is
// necessary to ensure that the underlying database is not changed during
// the answering process"); memdb's snapshot isolation per evaluation call
// plus the engine's single flush goroutine provide this.
func Coordinate(db *memdb.DB, queries []*ir.Query, opt CoordinateOptions) (*Outcome, error) {
	out := &Outcome{Answers: make(map[ir.QueryID]ir.Answer)}

	for _, q := range queries {
		if err := q.Validate(); err != nil {
			return nil, err
		}
	}

	// Rename apart so unifier propagation sees disjoint variables.
	renamed := make([]*ir.Query, len(queries))
	byID := make(map[ir.QueryID]*ir.Query, len(queries))
	for i, q := range queries {
		r := q.RenameApart()
		renamed[i] = r
		if _, dup := byID[r.ID]; dup {
			return nil, fmt.Errorf("match: duplicate query id %d in batch", r.ID)
		}
		byID[r.ID] = r
	}

	// Safety.
	if viol := CheckSafety(renamed); len(viol) > 0 {
		if !opt.EnforceSafety {
			return nil, fmt.Errorf("match: unsafe workload: %s (and %d more)", viol[0], len(viol)-1)
		}
		kept, removed := EnforceSafety(renamed)
		renamed = kept
		for _, q := range removed {
			out.UnsafeRemoved = append(out.UnsafeRemoved, q.ID)
			out.Rejected = append(out.Rejected, Removal{Query: q.ID, Cause: CauseUnsafe})
			delete(byID, q.ID)
		}
	}

	g, err := graph.Build(renamed)
	if err != nil {
		return nil, err
	}

	// UCS.
	out.UCSViolations = g.CheckUCS()
	if opt.RequireUCS && len(out.UCSViolations) > 0 {
		return nil, fmt.Errorf("match: workload violates UCS: queries %v can coordinate locally without their partners", out.UCSViolations)
	}

	comps := g.ConnectedComponents()
	out.Components = len(comps)

	type compResult struct {
		answers  []ir.Answer
		rejected []Removal
		combined *ir.CombinedQuery
	}
	results := make([]compResult, len(comps))

	par := opt.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(comps) {
		par = len(comps)
	}
	if par < 1 {
		par = 1
	}
	var wg sync.WaitGroup
	work := make(chan int)
	var firstErr error
	var errMu sync.Mutex
	seed := int64(0)
	if opt.Rand != nil {
		seed = opt.Rand.Int63()
	}
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range work {
				// One splitmix stream per component instead of a ~5 KB
				// rand.Rand allocation: a machine word on the stack, same
				// fixed-seed reproducibility.
				var rnd memdb.Rng
				if opt.Rand != nil {
					sm := memdb.NewSplitMix(seed + int64(ci))
					rnd = &sm
				}
				ans, rej, cq, err := EvaluateComponent(db, g, comps[ci], byID, rnd, opt.Match)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				results[ci] = compResult{answers: ans, rejected: rej, combined: cq}
			}
		}()
	}
	for ci := range comps {
		work <- ci
	}
	close(work)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	for _, r := range results {
		for _, a := range r.answers {
			out.Answers[a.QueryID] = a
		}
		out.Rejected = append(out.Rejected, r.rejected...)
		if r.combined != nil {
			out.Combined = append(out.Combined, r.combined)
		}
	}
	sortRemovals(out.Rejected)
	return out, nil
}

// EvaluateComponent matches one component, builds and evaluates its combined
// query, and splits the answers. byID must map every component member to its
// renamed-apart query. A nil rnd picks the first valuation. The combined
// query is returned for diagnostics; callers that do not need it should use
// EvaluateComponentFast, which skips materialising it.
func EvaluateComponent(db *memdb.DB, g graph.View, component []ir.QueryID, byID map[ir.QueryID]*ir.Query, rnd memdb.Rng, mopt Options) (answers []ir.Answer, rejected []Removal, combined *ir.CombinedQuery, err error) {
	return evaluateViaCombined(db, g, component, byID, rnd, mopt)
}

// Scratch pins one worker's complete fast-path evaluation state — the dense
// matcher's interner and union-find plus the compiled-evaluation scratch —
// to the caller instead of the package-level sync.Pools. The engine's
// persistent eval workers each own one, so steady-state component
// evaluation allocates nothing regardless of pool pressure elsewhere.
// A Scratch is not safe for concurrent use.
type Scratch struct {
	ds denseState
	ev evalScratch
}

// NewScratch returns a ready-to-use pinned evaluation scratch.
func NewScratch() *Scratch {
	in := unify.NewInterner()
	return &Scratch{ds: denseState{in: in, du: unify.NewDenseUnifier(in)}}
}

// EvaluateComponentFast is the engine's per-component answer path: the same
// outcomes as EvaluateComponent (identical answers, rejections, and CHOOSE
// draws for the stream derived from seed), without the CombinedQuery
// diagnostic or its construction cost. When the dense matcher fast path
// applies, the component evaluates through a compiled plan built straight
// off the interned unifier with pooled scratch; otherwise (clash or
// starvation, or the NaiveMGU/LegacyEval ablations) it falls back to the
// literal pipeline. seed derives the component's CHOOSE stream; 0 picks the
// first valuation deterministically. g may be the live graph or a
// graph.CompSnap of the component.
func EvaluateComponentFast(db *memdb.DB, g graph.View, component []ir.QueryID, byID map[ir.QueryID]*ir.Query, seed int64, mopt Options) (answers []ir.Answer, rejected []Removal, err error) {
	return EvaluateComponentFastWith(nil, db, g, component, byID, seed, mopt)
}

// EvaluateComponentFastWith is EvaluateComponentFast with the fast path's
// scratch pinned by the caller; a nil sc falls back to the package pools.
func EvaluateComponentFastWith(sc *Scratch, db *memdb.DB, g graph.View, component []ir.QueryID, byID map[ir.QueryID]*ir.Query, seed int64, mopt Options) (answers []ir.Answer, rejected []Removal, err error) {
	if !mopt.NaiveMGU && !mopt.LegacyEval {
		var ds *denseState
		var ev *evalScratch
		if sc != nil {
			ds, ev = &sc.ds, &sc.ev
		} else {
			ds = densePool.Get().(*denseState)
			ev = evalPool.Get().(*evalScratch)
		}
		_, ok := matchFastCoreInto(ds, g, component)
		if ok {
			answers, rejected, err = evaluateDense(db, ds, ev, byID, component, seed, mopt.Plans)
		}
		if sc == nil {
			densePool.Put(ds)
			evalPool.Put(ev)
		}
		if ok {
			return answers, rejected, err
		}
	}
	var rnd memdb.Rng
	if seed != 0 {
		sm := memdb.NewSplitMix(seed)
		rnd = &sm
	}
	answers, rejected, _, err = evaluateViaCombined(db, g, component, byID, rnd, mopt)
	return answers, rejected, err
}

// evaluateViaCombined is the literal pipeline: Algorithm 1 matching, then
// BuildCombined → Simplify → conjunctive evaluation → SplitAnswers.
// Options.LegacyEval selects the retained map-backed evaluator; the default
// compiles the simplified body per call (CompilePlan + ExecPlan under
// EvalConjunctive).
func evaluateViaCombined(db *memdb.DB, g graph.View, component []ir.QueryID, byID map[ir.QueryID]*ir.Query, rnd memdb.Rng, mopt Options) (answers []ir.Answer, rejected []Removal, combined *ir.CombinedQuery, err error) {
	res := MatchComponent(g, component, mopt)
	rejected = append(rejected, res.Removed...)
	if len(res.Survivors) == 0 {
		return nil, rejected, nil, nil
	}
	cq, global, err := BuildCombined(byID, res)
	if err != nil {
		// No global unifier: reject the whole surviving set (Section 4.2).
		for _, id := range res.Survivors {
			rejected = append(rejected, Removal{Query: id, Cause: CauseGlobalMGU})
		}
		return nil, rejected, nil, nil
	}
	simplified := Simplify(cq, global)
	var vals []ir.Substitution
	if mopt.LegacyEval {
		vals, err = db.EvalConjunctiveLegacy(simplified.Body, nil, memdb.EvalOptions{Limit: 1, Rand: rnd})
	} else {
		vals, err = db.EvalConjunctive(simplified.Body, nil, memdb.EvalOptions{Limit: 1, Rand: rnd})
	}
	if err != nil {
		return nil, nil, nil, err
	}
	if len(vals) == 0 {
		for _, id := range res.Survivors {
			rejected = append(rejected, Removal{Query: id, Cause: CauseNoData})
		}
		return nil, rejected, cq, nil
	}
	answers, err = SplitAnswers(byID, cq.Members, global, vals[0])
	if err != nil {
		return nil, nil, nil, err
	}
	return answers, rejected, cq, nil
}
