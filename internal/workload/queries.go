package workload

import (
	"fmt"
	"math/rand"

	"entangle/internal/ir"
	"entangle/internal/memdb"
)

// Database schema of the flight-booking scenario (Section 5.2), using the
// paper's abbreviations: R = Reserve (the ANSWER relation), F = Friends,
// U = User.
const (
	AnswerRel  = "R" // Reserve(UserName, Destination)
	FriendsRel = "F" // Friends(UserName1, UserName2)
	UserRel    = "U" // User(UserName, HomeTown)
)

// PopulateDB loads the social graph into a fresh database: the symmetric
// Friends relation and the User hometown relation.
func PopulateDB(db *memdb.DB, g *Graph) error {
	if err := db.CreateTable(FriendsRel, "u1", "u2"); err != nil {
		return err
	}
	if err := db.CreateTable(UserRel, "u", "city"); err != nil {
		return err
	}
	var frows [][]string
	urows := make([][]string, 0, g.N)
	for u := 0; u < g.N; u++ {
		un := UserName(u)
		urows = append(urows, []string{un, g.Airport(int(g.Hometown[u]))})
		for _, f := range g.Friends(u) {
			frows = append(frows, []string{un, UserName(int(f))})
		}
	}
	if err := db.BulkInsert(FriendsRel, frows); err != nil {
		return err
	}
	if err := db.BulkInsert(UserRel, urows); err != nil {
		return err
	}
	if err := db.CreateIndex(FriendsRel, "u1"); err != nil {
		return err
	}
	return db.CreateIndex(UserRel, "u")
}

// Gen generates experimental query workloads over a social graph. IDs are
// assigned sequentially from Next.
type Gen struct {
	G    *Graph
	Next ir.QueryID
	rng  *rand.Rand

	// DistinctRels gives each coordinating group (pair, triangle, clique)
	// its own ANSWER relation ("R_g1", "R_g2", …) instead of the shared
	// paper relation R. Coordination inside a group is unchanged — members
	// still reference each other's heads — but groups become unifiability-
	// disjoint, modelling independent applications each declaring their own
	// ANSWER namespace. This is the workload shape that lets a sharded
	// engine spread groups across shards (with one shared R every query has
	// the same routing signature and lands on one shard).
	DistinctRels bool
	group        int
}

// NewGen returns a generator with its own deterministic RNG.
func NewGen(g *Graph, seed int64) *Gen {
	return &Gen{G: g, Next: 1, rng: rand.New(rand.NewSource(seed))}
}

func (gen *Gen) id() ir.QueryID {
	id := gen.Next
	gen.Next++
	return id
}

// groupRel returns the ANSWER relation for the next coordinating group:
// the shared AnswerRel, or a fresh per-group name under DistinctRels.
func (gen *Gen) groupRel() string {
	if !gen.DistinctRels {
		return AnswerRel
	}
	gen.group++
	return fmt.Sprintf("%s_g%d", AnswerRel, gen.group)
}

func (gen *Gen) dest() string {
	return gen.G.Airport(gen.rng.Intn(len(gen.G.Airports())))
}

// TwoWayRandom builds the Figure 6 "random workload": for each friend pair
// (u, v), two queries of the paper's form
//
//	{R(x, D)} R(u, D) :- F(u, x) ∧ U(u, c) ∧ U(x, c)
//	{R(y, D)} R(v, D) :- F(v, y) ∧ U(v, c') ∧ U(y, c')
//
// The pair are friends, but nothing forces them into the same city, so the
// pair has "a realistic — not too small and not too large — chance to
// coordinate" (Section 5.3.1). D is a per-pair random destination.
func (gen *Gen) TwoWayRandom(pairs [][2]int) []*ir.Query {
	var out []*ir.Query
	for _, p := range pairs {
		d := gen.dest()
		rel := gen.groupRel()
		out = append(out, gen.partnerSeekQuery(rel, p[0], d), gen.partnerSeekQuery(rel, p[1], d))
	}
	return out
}

// partnerSeekQuery builds one "fly to dest with any friend in my city"
// query for user u, coordinating through the given ANSWER relation.
func (gen *Gen) partnerSeekQuery(rel string, u int, dest string) *ir.Query {
	un := UserName(u)
	q := &ir.Query{
		ID:     gen.id(),
		Owner:  un,
		Choose: 1,
		Heads:  []ir.Atom{ir.NewAtom(rel, ir.Const(un), ir.Const(dest))},
		Posts:  []ir.Atom{ir.NewAtom(rel, ir.Var("x"), ir.Const(dest))},
		Body: []ir.Atom{
			ir.NewAtom(FriendsRel, ir.Const(un), ir.Var("x")),
			ir.NewAtom(UserRel, ir.Const(un), ir.Var("c")),
			ir.NewAtom(UserRel, ir.Var("x"), ir.Var("c")),
		},
	}
	return q
}

// TwoWayBest builds the Figure 6 "best-case workload": the fully specified
// variant where partner names are constants, eliminating the F ⋈ U join
// needed to ground x (Section 5.3.1's second query form).
func (gen *Gen) TwoWayBest(pairs [][2]int) []*ir.Query {
	var out []*ir.Query
	for _, p := range pairs {
		d := gen.dest()
		rel := gen.groupRel()
		out = append(out,
			gen.specificQuery(rel, p[0], p[1], d),
			gen.specificQuery(rel, p[1], p[0], d))
	}
	return out
}

// specificQuery builds "u flies to dest with exactly partner", coordinating
// through the given ANSWER relation.
func (gen *Gen) specificQuery(rel string, u, partner int, dest string) *ir.Query {
	un, pn := UserName(u), UserName(partner)
	return &ir.Query{
		ID:     gen.id(),
		Owner:  un,
		Choose: 1,
		Heads:  []ir.Atom{ir.NewAtom(rel, ir.Const(un), ir.Const(dest))},
		Posts:  []ir.Atom{ir.NewAtom(rel, ir.Const(pn), ir.Const(dest))},
		Body: []ir.Atom{
			ir.NewAtom(FriendsRel, ir.Const(un), ir.Const(pn)),
			ir.NewAtom(UserRel, ir.Const(un), ir.Var("c")),
			ir.NewAtom(UserRel, ir.Const(pn), ir.Var("c")),
		},
	}
}

// ThreeWay builds the Figure 6 three-way workload: for each triangle
// (a, b, c), a 3-cycle of fully specified queries a→b→c→a (Section 5.3.2).
func (gen *Gen) ThreeWay(triangles [][3]int) []*ir.Query {
	var out []*ir.Query
	for _, tri := range triangles {
		d := gen.dest()
		rel := gen.groupRel()
		out = append(out,
			gen.specificQuery(rel, tri[0], tri[1], d),
			gen.specificQuery(rel, tri[1], tri[2], d),
			gen.specificQuery(rel, tri[2], tri[0], d))
	}
	return out
}

// Clique builds the Figure 7 workload: for each k-clique, k queries each
// carrying k-1 postconditions naming every other member (Section 5.3.3's
// "travel with all my friends" scenario).
func (gen *Gen) Clique(cliques [][]int) []*ir.Query {
	var out []*ir.Query
	for _, clique := range cliques {
		d := gen.dest()
		rel := gen.groupRel()
		for i, u := range clique {
			un := UserName(u)
			q := &ir.Query{
				ID:     gen.id(),
				Owner:  un,
				Choose: 1,
				Heads:  []ir.Atom{ir.NewAtom(rel, ir.Const(un), ir.Const(d))},
			}
			q.Body = append(q.Body, ir.NewAtom(UserRel, ir.Const(un), ir.Var("c")))
			for j, v := range clique {
				if i == j {
					continue
				}
				vn := UserName(v)
				q.Posts = append(q.Posts, ir.NewAtom(rel, ir.Const(vn), ir.Const(d)))
				q.Body = append(q.Body,
					ir.NewAtom(FriendsRel, ir.Const(un), ir.Const(vn)),
					ir.NewAtom(UserRel, ir.Const(vn), ir.Var("c")))
			}
			out = append(out, q)
		}
	}
	return out
}

// NoMatch builds the Figure 8 "no coordination, no unification" workload:
// every query's postcondition names a partner destination that no head in
// the workload uses, so the unifiability graph has no edges.
func (gen *Gen) NoMatch(n int) []*ir.Query {
	out := make([]*ir.Query, 0, n)
	for i := 0; i < n; i++ {
		u := gen.rng.Intn(gen.G.N)
		un := UserName(u)
		q := &ir.Query{
			ID:     gen.id(),
			Owner:  un,
			Choose: 1,
			// Head destinations H<i> and post destinations P<i> are drawn
			// from disjoint namespaces, so no post unifies with any head.
			Heads: []ir.Atom{ir.NewAtom(AnswerRel, ir.Const(un), ir.Const(fmt.Sprintf("H%d", i)))},
			Posts: []ir.Atom{ir.NewAtom(AnswerRel, ir.Var("x"), ir.Const(fmt.Sprintf("P%d", i)))},
			Body: []ir.Atom{
				ir.NewAtom(FriendsRel, ir.Const(un), ir.Var("x")),
			},
		}
		out = append(out, q)
	}
	return out
}

// Chains builds the Figure 8 "usual partitions" workload: queries unify
// into chains in the unifiability graph (each query's head feeds the next
// query's postcondition) but form no cycles, so no matching ever completes.
// chainLen bounds each chain, mirroring how social clustering bounds
// partition sizes in the paper's experiment.
func (gen *Gen) Chains(n, chainLen int) []*ir.Query {
	if chainLen < 2 {
		chainLen = 2
	}
	out := make([]*ir.Query, 0, n)
	chain := 0
	for len(out) < n {
		clen := chainLen
		if rem := n - len(out); clen > rem {
			clen = rem
		}
		for i := 0; i < clen; i++ {
			u := gen.rng.Intn(gen.G.N)
			un := UserName(u)
			q := &ir.Query{
				ID:     gen.id(),
				Owner:  un,
				Choose: 1,
				Heads:  []ir.Atom{ir.NewAtom(AnswerRel, ir.Const(un), ir.Const(fmt.Sprintf("C%d·%d", chain, i)))},
				// Post points at the previous link's head destination; the
				// chain head (i == 0) points at a destination nobody offers.
				Posts: []ir.Atom{ir.NewAtom(AnswerRel, ir.Var("x"), ir.Const(fmt.Sprintf("C%d·%d", chain, i-1)))},
				Body: []ir.Atom{
					ir.NewAtom(FriendsRel, ir.Const(un), ir.Var("x")),
				},
			}
			out = append(out, q)
		}
		chain++
	}
	return out
}

// BigCluster builds the Figure 8 stress-test workload: all n queries unify
// into one massive partition (a single chain over users of a big cluster).
func (gen *Gen) BigCluster(n int) []*ir.Query {
	return gen.Chains(n, n)
}

// ResidentNoCoordination builds the Figure 9 resident set: n queries that
// cannot coordinate (posts reference unmatched destinations) but whose
// heads share `groups` destinations D0..D<groups-1> — the bait for
// subsequent unsafe arrivals. groups must satisfy n/groups ≥ 2 for every
// group to hold at least two heads (the paper uses 20,000 residents over
// 1,000 groups); pass groups ≤ n/2.
func (gen *Gen) ResidentNoCoordination(n, groups int) []*ir.Query {
	if groups < 1 {
		groups = 1
	}
	out := make([]*ir.Query, 0, n)
	for i := 0; i < n; i++ {
		u := gen.rng.Intn(gen.G.N)
		un := UserName(u)
		q := &ir.Query{
			ID:     gen.id(),
			Owner:  un,
			Choose: 1,
			Heads:  []ir.Atom{ir.NewAtom(AnswerRel, ir.Const(un), ir.Const(fmt.Sprintf("D%d", i%groups)))},
			Posts:  []ir.Atom{ir.NewAtom(AnswerRel, ir.Var("x"), ir.Const(fmt.Sprintf("Z%d", i)))},
			Body: []ir.Atom{
				ir.NewAtom(FriendsRel, ir.Const(un), ir.Var("x")),
			},
		}
		out = append(out, q)
	}
	return out
}

// UnsafeBatch builds the Figure 9 arrival batches: each query's
// postcondition R(x, D<k>) unifies with the multiple resident heads
// sharing destination D<k> (k < groups, matching the resident set's
// grouping), so the safety check must reject it.
func (gen *Gen) UnsafeBatch(n, groups int) []*ir.Query {
	if groups < 1 {
		groups = 1
	}
	out := make([]*ir.Query, 0, n)
	for i := 0; i < n; i++ {
		u := gen.rng.Intn(gen.G.N)
		un := UserName(u)
		q := &ir.Query{
			ID:     gen.id(),
			Owner:  un,
			Choose: 1,
			Heads:  []ir.Atom{ir.NewAtom(AnswerRel, ir.Const(un), ir.Const(fmt.Sprintf("X%d", i)))},
			Posts:  []ir.Atom{ir.NewAtom(AnswerRel, ir.Var("x"), ir.Const(fmt.Sprintf("D%d", i%groups)))},
			Body: []ir.Atom{
				ir.NewAtom(FriendsRel, ir.Const(un), ir.Var("x")),
			},
		}
		out = append(out, q)
	}
	return out
}

// Interleave returns a deterministic random permutation of the queries.
func (gen *Gen) Interleave(queries []*ir.Query) []*ir.Query {
	out := append([]*ir.Query(nil), queries...)
	gen.rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// PermuteGroups randomly permutes consecutive groups of k queries while
// keeping each group's members adjacent. This is the paper's arrival model
// for Figure 6 ("a randomly permuted set of mutually coordinating *pairs*
// of queries"): the pair order is random, but a pair's two queries arrive
// together, which is why the pending set stays small and evaluation is
// linear. len(queries) must be a multiple of k.
func (gen *Gen) PermuteGroups(queries []*ir.Query, k int) []*ir.Query {
	if k < 1 || len(queries)%k != 0 {
		return gen.Interleave(queries)
	}
	nGroups := len(queries) / k
	order := gen.rng.Perm(nGroups)
	out := make([]*ir.Query, 0, len(queries))
	for _, gi := range order {
		out = append(out, queries[gi*k:(gi+1)*k]...)
	}
	return out
}
