package workload

import (
	"testing"

	"entangle/internal/graph"
	"entangle/internal/ir"
	"entangle/internal/match"
	"entangle/internal/memdb"
)

// smallGraph builds a small deterministic social graph for tests.
func smallGraph(t testing.TB) *Graph {
	t.Helper()
	return NewGraph(Config{N: 500, AvgDeg: 10, Seed: 1, Airports: 8})
}

func TestGraphDeterminism(t *testing.T) {
	g1 := NewGraph(Config{N: 200, AvgDeg: 8, Seed: 42, Airports: 5})
	g2 := NewGraph(Config{N: 200, AvgDeg: 8, Seed: 42, Airports: 5})
	for u := 0; u < g1.N; u++ {
		if g1.Degree(u) != g2.Degree(u) {
			t.Fatalf("degree(%d) differs across runs with the same seed", u)
		}
		if g1.Hometown[u] != g2.Hometown[u] {
			t.Fatalf("hometown(%d) differs across runs with the same seed", u)
		}
	}
	g3 := NewGraph(Config{N: 200, AvgDeg: 8, Seed: 43, Airports: 5})
	same := true
	for u := 0; u < g1.N; u++ {
		if g1.Degree(u) != g3.Degree(u) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestGraphBasicInvariants(t *testing.T) {
	g := smallGraph(t)
	edges := 0
	for u := 0; u < g.N; u++ {
		edges += g.Degree(u)
		for _, f := range g.Friends(u) {
			if int(f) == u {
				t.Fatalf("self loop at %d", u)
			}
			if !g.AreFriends(int(f), u) {
				t.Fatalf("friendship not symmetric: %d→%d", u, f)
			}
		}
		if g.Hometown[u] < 0 || int(g.Hometown[u]) >= len(g.Airports()) {
			t.Fatalf("hometown out of range: %d", g.Hometown[u])
		}
	}
	if edges == 0 {
		t.Fatal("graph has no edges")
	}
	avg := float64(edges) / float64(g.N)
	if avg < 2 || avg > 40 {
		t.Fatalf("average degree %f implausible", avg)
	}
}

func TestGraphClustering(t *testing.T) {
	g := smallGraph(t)
	cc := g.ClusteringCoefficient(200, 7)
	// The triangle-closure step must give materially more clustering than
	// an Erdős–Rényi graph of the same density (~avgdeg/n = 0.02).
	if cc < 0.03 {
		t.Fatalf("clustering coefficient %f too low — triangle closure broken?", cc)
	}
}

func TestHometownHomophily(t *testing.T) {
	// The assignment should give most users a good fraction of same-city
	// friends (the paper ensures "as far as possible" at least half).
	g := smallGraph(t)
	sameCity, total := 0, 0
	for u := 0; u < g.N; u++ {
		for _, f := range g.Friends(u) {
			total++
			if g.Hometown[u] == g.Hometown[f] {
				sameCity++
			}
		}
	}
	frac := float64(sameCity) / float64(total)
	if frac < 0.5 {
		t.Fatalf("same-city friend fraction %f < 0.5", frac)
	}
}

func TestAirportCodesDistinct(t *testing.T) {
	g := NewGraph(Config{N: 10, Airports: 102, Seed: 1})
	seen := map[string]bool{}
	for _, a := range g.Airports() {
		if seen[a] {
			t.Fatalf("duplicate airport code %s", a)
		}
		if len(a) != 3 {
			t.Fatalf("airport code %q not three letters", a)
		}
		seen[a] = true
	}
	if len(seen) != 102 {
		t.Fatalf("airports = %d", len(seen))
	}
}

func TestFriendPairs(t *testing.T) {
	g := smallGraph(t)
	pairs := g.FriendPairs(100, 3)
	if len(pairs) != 100 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range pairs {
		if !g.AreFriends(p[0], p[1]) {
			t.Fatalf("pair %v are not friends", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestTriangles(t *testing.T) {
	g := smallGraph(t)
	tris := g.Triangles(30, 5)
	if len(tris) == 0 {
		t.Fatal("no triangles found")
	}
	for _, tri := range tris {
		if !g.AreFriends(tri[0], tri[1]) || !g.AreFriends(tri[1], tri[2]) || !g.AreFriends(tri[0], tri[2]) {
			t.Fatalf("%v is not a triangle", tri)
		}
	}
}

func TestCliques(t *testing.T) {
	g := smallGraph(t)
	for k := 2; k <= 4; k++ {
		cliques := g.Cliques(10, k, 9)
		if len(cliques) == 0 {
			t.Fatalf("no %d-cliques found", k)
		}
		for _, c := range cliques {
			if len(c) != k {
				t.Fatalf("clique size %d != %d", len(c), k)
			}
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					if !g.AreFriends(c[i], c[j]) {
						t.Fatalf("%v is not a clique", c)
					}
				}
			}
		}
	}
}

func TestLargestComponentSample(t *testing.T) {
	g := smallGraph(t)
	got := g.LargestComponentSample(50)
	if len(got) != 50 {
		t.Fatalf("sample = %d", len(got))
	}
	seen := map[int]bool{}
	for _, u := range got {
		if seen[u] {
			t.Fatalf("duplicate user %d in sample", u)
		}
		seen[u] = true
	}
}

func TestPopulateDB(t *testing.T) {
	g := smallGraph(t)
	db := memdb.New()
	if err := PopulateDB(db, g); err != nil {
		t.Fatal(err)
	}
	if db.Table(UserRel).Len() != g.N {
		t.Fatalf("User rows = %d", db.Table(UserRel).Len())
	}
	edges := 0
	for u := 0; u < g.N; u++ {
		edges += g.Degree(u)
	}
	if db.Table(FriendsRel).Len() != edges {
		t.Fatalf("Friends rows = %d, want %d", db.Table(FriendsRel).Len(), edges)
	}
}

func TestTwoWayBestCoordinates(t *testing.T) {
	g := smallGraph(t)
	db := memdb.New()
	if err := PopulateDB(db, g); err != nil {
		t.Fatal(err)
	}
	gen := NewGen(g, 11)
	pairs := g.FriendPairs(20, 11)
	qs := gen.TwoWayBest(pairs)
	if len(qs) != 40 {
		t.Fatalf("queries = %d", len(qs))
	}
	out, err := match.Coordinate(db, qs, match.CoordinateOptions{EnforceSafety: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every matched pair that shares a hometown coordinates; count pairs
	// whose members share a city and verify they were answered (unless
	// dropped by safety enforcement due to destination collisions).
	unsafeSet := map[ir.QueryID]bool{}
	for _, id := range out.UnsafeRemoved {
		unsafeSet[id] = true
	}
	for i, p := range pairs {
		id1, id2 := qs[2*i].ID, qs[2*i+1].ID
		if unsafeSet[id1] || unsafeSet[id2] {
			continue
		}
		sameCity := g.Hometown[p[0]] == g.Hometown[p[1]]
		_, a1 := out.Answers[id1]
		_, a2 := out.Answers[id2]
		if sameCity && (!a1 || !a2) {
			t.Errorf("same-city pair %v not answered", p)
		}
		if !sameCity && (a1 || a2) {
			t.Errorf("different-city pair %v should not be answered", p)
		}
		if a1 != a2 {
			t.Errorf("pair %v half-answered", p)
		}
	}
	if len(out.Answers) == 0 {
		t.Fatal("no pair coordinated at all — hometown assignment too scattered?")
	}
}

func TestTwoWayRandomSafeInIsolation(t *testing.T) {
	// A single pair from the random workload must be safe (own heads do
	// not count) and must coordinate when the two users share a city.
	g := smallGraph(t)
	db := memdb.New()
	if err := PopulateDB(db, g); err != nil {
		t.Fatal(err)
	}
	gen := NewGen(g, 13)
	// Find a same-city friend pair.
	var pair [2]int
	found := false
	for _, p := range g.FriendPairs(200, 13) {
		if g.Hometown[p[0]] == g.Hometown[p[1]] {
			pair = p
			found = true
			break
		}
	}
	if !found {
		t.Skip("no same-city pair in sample")
	}
	qs := gen.TwoWayRandom([][2]int{pair})
	if viol := match.CheckSafety(qs); len(viol) != 0 {
		t.Fatalf("isolated pair should be safe: %v", viol)
	}
	out, err := match.Coordinate(db, qs, match.CoordinateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %v rejected = %v", out.Answers, out.Rejected)
	}
}

func TestThreeWayCycles(t *testing.T) {
	g := smallGraph(t)
	db := memdb.New()
	if err := PopulateDB(db, g); err != nil {
		t.Fatal(err)
	}
	gen := NewGen(g, 17)
	tris := g.Triangles(10, 17)
	qs := gen.ThreeWay(tris)
	if len(qs) != 3*len(tris) {
		t.Fatalf("queries = %d", len(qs))
	}
	out, err := match.Coordinate(db, qs, match.CoordinateOptions{EnforceSafety: true})
	if err != nil {
		t.Fatal(err)
	}
	// Answered triangles must be answered as whole triples.
	for i := range tris {
		n := 0
		for j := 0; j < 3; j++ {
			if _, ok := out.Answers[qs[3*i+j].ID]; ok {
				n++
			}
		}
		if n != 0 && n != 3 {
			t.Fatalf("triangle %d partially answered (%d of 3)", i, n)
		}
	}
}

func TestCliqueWorkloadShape(t *testing.T) {
	g := smallGraph(t)
	gen := NewGen(g, 19)
	cliques := g.Cliques(5, 3, 19)
	qs := gen.Clique(cliques)
	if len(qs) != 5*3 {
		t.Fatalf("queries = %d", len(qs))
	}
	for _, q := range qs {
		if len(q.Posts) != 2 {
			t.Fatalf("3-clique query should have 2 postconditions, got %d", len(q.Posts))
		}
		// Body: 1 own U atom + per-partner (F + U) = 1 + 2*2 = 5.
		if len(q.Body) != 5 {
			t.Fatalf("body atoms = %d", len(q.Body))
		}
		if err := q.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoMatchHasNoEdges(t *testing.T) {
	g := smallGraph(t)
	gen := NewGen(g, 23)
	qs := gen.NoMatch(100)
	renamed := make([]*ir.Query, len(qs))
	for i, q := range qs {
		renamed[i] = q.RenameApart()
	}
	ug, err := graph.Build(renamed)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range ug.QueryIDs() {
		if len(ug.Node(id).Out) != 0 {
			t.Fatalf("no-match workload produced an edge from q%d", id)
		}
	}
}

func TestChainsShape(t *testing.T) {
	g := smallGraph(t)
	gen := NewGen(g, 29)
	qs := gen.Chains(100, 10)
	if len(qs) != 100 {
		t.Fatalf("queries = %d", len(qs))
	}
	renamed := make([]*ir.Query, len(qs))
	for i, q := range qs {
		renamed[i] = q.RenameApart()
	}
	ug, err := graph.Build(renamed)
	if err != nil {
		t.Fatal(err)
	}
	comps := ug.ConnectedComponents()
	if len(comps) != 10 {
		t.Fatalf("components = %d, want 10 chains", len(comps))
	}
	// Chains have no cycles: every SCC is a singleton.
	for _, scc := range ug.SCCs() {
		if len(scc) != 1 {
			t.Fatalf("chain workload contains a cycle: %v", scc)
		}
	}
	// And no chain ever completes a match.
	for _, comp := range comps {
		res := match.MatchComponent(ug, comp, match.Options{})
		if len(res.Survivors) != 0 {
			t.Fatalf("chain component matched: %v", res.Survivors)
		}
	}
}

func TestUnsafeBatchRejected(t *testing.T) {
	g := smallGraph(t)
	gen := NewGen(g, 31)
	resident := gen.ResidentNoCoordination(2000, 100)
	checker := match.NewSafetyChecker()
	for _, q := range resident {
		if err := checker.Admit(q.RenameApart()); err != nil {
			t.Fatalf("resident query rejected: %v", err)
		}
	}
	batch := gen.UnsafeBatch(100, 100)
	rejected := 0
	for _, q := range batch {
		if err := checker.Check(q.RenameApart()); err != nil {
			rejected++
		}
	}
	if rejected != len(batch) {
		t.Fatalf("only %d/%d unsafe arrivals rejected", rejected, len(batch))
	}
}

func TestInterleaveIsPermutation(t *testing.T) {
	g := smallGraph(t)
	gen := NewGen(g, 37)
	qs := gen.NoMatch(50)
	shuffled := gen.Interleave(qs)
	if len(shuffled) != len(qs) {
		t.Fatalf("length changed: %d", len(shuffled))
	}
	seen := map[ir.QueryID]bool{}
	for _, q := range shuffled {
		seen[q.ID] = true
	}
	for _, q := range qs {
		if !seen[q.ID] {
			t.Fatalf("query %d lost in shuffle", q.ID)
		}
	}
}

func TestDegreeDistributionHeavyTail(t *testing.T) {
	// Preferential attachment must produce a heavy-tailed degree
	// distribution: the maximum degree should far exceed the average, and
	// a small fraction of hub nodes should hold a large share of edges —
	// neither holds for an Erdős–Rényi graph of the same density.
	g := NewGraph(Config{N: 5000, AvgDeg: 10, Seed: 2})
	degs := make([]int, g.N)
	total := 0
	for u := 0; u < g.N; u++ {
		degs[u] = g.Degree(u)
		total += degs[u]
	}
	avg := float64(total) / float64(g.N)
	max := 0
	for _, d := range degs {
		if d > max {
			max = d
		}
	}
	if float64(max) < 5*avg {
		t.Fatalf("max degree %d < 5×avg %.1f — no heavy tail", max, avg)
	}
	// Top 1% of nodes should carry >5% of edge endpoints.
	sortInts(degs)
	top := degs[g.N-g.N/100:]
	topSum := 0
	for _, d := range top {
		topSum += d
	}
	if frac := float64(topSum) / float64(total); frac < 0.05 {
		t.Fatalf("top 1%% holds only %.1f%% of endpoints", frac*100)
	}
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
