// Package workload generates the experimental workloads of Section 5 of the
// paper: a social-network substrate standing in for the Slashdot0902 graph,
// hometown assignment over 102 airports, and query generators for every
// figure of the evaluation (two-way pairs, three-way cycles, k-postcondition
// cliques, no-unification sets, long chains, massive clusters, and unsafe
// batches for the safety-check stress test).
//
// Substitution note (see DESIGN.md): the paper loads the real Slashdot
// social graph (82,168 users). That dataset is not available offline, so
// Graph generates a preferential-attachment graph with the same node count,
// a heavy-tailed degree distribution and high clustering — the structural
// properties the experiments actually depend on (friend pairs, triangles,
// k-cliques, bounded cluster sizes). Generation is deterministic per seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// SlashdotUsers is the node count of the paper's social graph.
const SlashdotUsers = 82168

// NumAirports is the paper's destination count.
const NumAirports = 102

// Graph is an undirected social graph over users 0..N-1 with hometowns.
type Graph struct {
	N        int
	adj      [][]int32 // sorted adjacency lists
	Hometown []int16   // airport index per user
	airports []string
}

// Airports returns the airport codes used for hometowns and destinations.
func (g *Graph) Airports() []string { return g.airports }

// Airport returns the code of airport i.
func (g *Graph) Airport(i int) string { return g.airports[i] }

// UserName returns the canonical name of user u ("u<id>").
func UserName(u int) string { return fmt.Sprintf("u%d", u) }

// Degree returns the number of friends of user u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Friends returns user u's sorted friend list. The slice is shared; do not
// modify.
func (g *Graph) Friends(u int) []int32 { return g.adj[u] }

// AreFriends reports whether u and v are adjacent.
func (g *Graph) AreFriends(u, v int) bool {
	list := g.adj[u]
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// Config controls graph generation.
type Config struct {
	N        int   // number of users; defaults to SlashdotUsers
	AvgDeg   int   // target average degree (edges per new node); default 12
	Seed     int64 // RNG seed; the same seed reproduces the same graph
	Airports int   // number of airports; defaults to NumAirports
	// PlantedCliques fully connects this many random groups of
	// PlantedCliqueSize users, modelling the dense friend groups (families,
	// clubs) real social networks contain; the Figure 7 workload needs
	// k-cliques up to size 6. Defaults to N/400 cliques of size 8.
	// Set to -1 to disable planting.
	PlantedCliques    int
	PlantedCliqueSize int
}

// NewGraph generates the social substrate: a preferential-attachment graph
// with triangle closure (each new node attaches to m targets, then closes a
// random triangle among them with probability ½ — yielding the clustering
// the Figure 8 experiment depends on), followed by hometown assignment that
// places each user with the majority of its already-assigned friends, which
// approximates the paper's "at least half his or her friends living in the
// same city" property.
func NewGraph(cfg Config) *Graph {
	if cfg.N <= 0 {
		cfg.N = SlashdotUsers
	}
	if cfg.AvgDeg <= 0 {
		cfg.AvgDeg = 12
	}
	if cfg.Airports <= 0 {
		cfg.Airports = NumAirports
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := cfg.AvgDeg / 2
	if m < 1 {
		m = 1
	}
	g := &Graph{N: cfg.N}
	adjSet := make([]map[int32]struct{}, cfg.N)
	adjList := make([][]int32, cfg.N) // append-order lists keep generation deterministic
	for i := range adjSet {
		adjSet[i] = make(map[int32]struct{}, m*2)
	}
	// Repeated-node list for preferential attachment: a node appears once
	// per incident edge endpoint, so uniform sampling is degree-biased.
	targets := make([]int32, 0, cfg.N*m*2)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		if _, dup := adjSet[a][b]; dup {
			return
		}
		adjSet[a][b] = struct{}{}
		adjSet[b][a] = struct{}{}
		adjList[a] = append(adjList[a], b)
		adjList[b] = append(adjList[b], a)
		targets = append(targets, a, b)
	}
	// Seed clique of m+1 nodes.
	seedN := m + 1
	if seedN > cfg.N {
		seedN = cfg.N
	}
	for a := 0; a < seedN; a++ {
		for b := a + 1; b < seedN; b++ {
			addEdge(int32(a), int32(b))
		}
	}
	for v := seedN; v < cfg.N; v++ {
		var attached []int32
		for len(attached) < m && len(targets) > 0 {
			t := targets[rng.Intn(len(targets))]
			if t == int32(v) {
				continue
			}
			if _, dup := adjSet[v][t]; dup {
				continue
			}
			addEdge(int32(v), t)
			attached = append(attached, t)
		}
		// Triangle closure: also befriend a friend of an attachment target.
		if len(attached) > 0 && rng.Intn(2) == 0 {
			t := attached[rng.Intn(len(attached))]
			fs := adjList[t]
			if len(fs) > 0 {
				addEdge(int32(v), fs[rng.Intn(len(fs))])
			}
		}
	}
	// Plant dense cliques so the graph contains the k-cliques (up to k=6)
	// the postcondition-scaling experiment requires.
	planted := cfg.PlantedCliques
	if planted == 0 {
		planted = cfg.N / 400
	}
	size := cfg.PlantedCliqueSize
	if size <= 0 {
		size = 8
	}
	if size > cfg.N {
		size = cfg.N
	}
	if planted > 0 {
		for c := 0; c < planted; c++ {
			members := make([]int32, size)
			for i := range members {
				members[i] = int32(rng.Intn(cfg.N))
			}
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					addEdge(members[i], members[j])
				}
			}
		}
	}

	g.adj = adjList
	for u := range g.adj {
		sort.Slice(g.adj[u], func(i, j int) bool { return g.adj[u][i] < g.adj[u][j] })
	}

	// Airports.
	g.airports = make([]string, cfg.Airports)
	for i := range g.airports {
		g.airports[i] = airportCode(i)
	}

	// Hometowns: majority of already-assigned friends, else random.
	g.Hometown = make([]int16, cfg.N)
	for i := range g.Hometown {
		g.Hometown[i] = -1
	}
	order := rng.Perm(cfg.N)
	counts := make([]int, cfg.Airports)
	for _, u := range order {
		for i := range counts {
			counts[i] = 0
		}
		bestCity, bestCount := -1, 0
		for _, f := range g.adj[u] {
			if c := g.Hometown[f]; c >= 0 {
				counts[c]++
				if counts[c] > bestCount {
					bestCity, bestCount = int(c), counts[c]
				}
			}
		}
		if bestCity >= 0 {
			g.Hometown[u] = int16(bestCity)
		} else {
			g.Hometown[u] = int16(rng.Intn(cfg.Airports))
		}
	}
	return g
}

// airportCode produces distinct three-letter codes: AAA, AAB, …
func airportCode(i int) string {
	return string([]byte{
		'A' + byte(i/676%26),
		'A' + byte(i/26%26),
		'A' + byte(i%26),
	})
}

// FriendPairs returns up to n distinct ordered friend pairs (u, v), sampled
// deterministically from the given seed. Pairs are distinct as pairs; a
// user may appear in several pairs (as in the paper's workloads, where each
// pair coordinates through its own ANSWER tuples).
func (g *Graph) FriendPairs(n int, seed int64) [][2]int {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool, n)
	out := make([][2]int, 0, n)
	attempts := 0
	for len(out) < n && attempts < n*50 {
		attempts++
		u := rng.Intn(g.N)
		if len(g.adj[u]) == 0 {
			continue
		}
		v := int(g.adj[u][rng.Intn(len(g.adj[u]))])
		p := [2]int{u, v}
		if seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}

// Triangles returns up to n triangles (u, v, w) with all three edges
// present, sampled deterministically.
func (g *Graph) Triangles(n int, seed int64) [][3]int {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[3]int]bool, n)
	out := make([][3]int, 0, n)
	attempts := 0
	for len(out) < n && attempts < n*200 {
		attempts++
		u := rng.Intn(g.N)
		if len(g.adj[u]) < 2 {
			continue
		}
		v := int(g.adj[u][rng.Intn(len(g.adj[u]))])
		w := int(g.adj[u][rng.Intn(len(g.adj[u]))])
		if v == w || !g.AreFriends(v, w) {
			continue
		}
		tri := [3]int{u, v, w}
		sort.Ints(tri[:])
		if seen[tri] {
			continue
		}
		seen[tri] = true
		out = append(out, tri)
	}
	return out
}

// Cliques returns up to n cliques of size k, grown greedily from random
// edges. Used by the Figure 7 workload (coordination with k-1
// postconditions needs k-cliques).
func (g *Graph) Cliques(n, k int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var out [][]int
	seen := make(map[string]bool)
	attempts := 0
	for len(out) < n && attempts < n*500 {
		attempts++
		u := rng.Intn(g.N)
		if len(g.adj[u]) < k-1 {
			continue
		}
		clique := []int{u}
		// Candidates: neighbours of u, tried in random order.
		cand := append([]int32(nil), g.adj[u]...)
		rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
		for _, c := range cand {
			if len(clique) == k {
				break
			}
			ok := true
			for _, m := range clique {
				if !g.AreFriends(int(c), m) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, int(c))
			}
		}
		if len(clique) != k {
			continue
		}
		sort.Ints(clique)
		key := fmt.Sprint(clique)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, clique)
	}
	return out
}

// LargestComponentSample finds a user inside a large, well-connected region
// by picking the highest-degree node; BFS from it yields the "big cluster"
// used in the Figure 8 stress test.
func (g *Graph) LargestComponentSample(size int) []int {
	best := 0
	for u := 1; u < g.N; u++ {
		if len(g.adj[u]) > len(g.adj[best]) {
			best = u
		}
	}
	seen := map[int]bool{best: true}
	queue := []int{best}
	out := []int{best}
	for len(queue) > 0 && len(out) < size {
		u := queue[0]
		queue = queue[1:]
		for _, f := range g.adj[u] {
			if !seen[int(f)] {
				seen[int(f)] = true
				out = append(out, int(f))
				queue = append(queue, int(f))
				if len(out) >= size {
					break
				}
			}
		}
	}
	return out
}

// ClusteringCoefficient estimates the average local clustering coefficient
// over a sample of nodes — reported by the bench harness so the synthetic
// graph can be compared with the real Slashdot graph's clustering (~0.06).
func (g *Graph) ClusteringCoefficient(sample int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	if sample <= 0 || sample > g.N {
		sample = g.N
	}
	total, counted := 0.0, 0
	for i := 0; i < sample; i++ {
		u := rng.Intn(g.N)
		d := len(g.adj[u])
		if d < 2 {
			continue
		}
		links := 0
		for a := 0; a < d; a++ {
			for b := a + 1; b < d; b++ {
				if g.AreFriends(int(g.adj[u][a]), int(g.adj[u][b])) {
					links++
				}
			}
		}
		total += 2.0 * float64(links) / float64(d*(d-1))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
