package entangle

// Tests for the public context-first API: Open/Submit/Wait semantics, typed
// sentinel errors, and SubmitBatch's equivalence with one-at-a-time
// submission.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"entangle/internal/workload"
)

func flightsSystem(t testing.TB, opts ...Option) *System {
	t.Helper()
	sys, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	sys.MustCreateTable("Flights", "fno", "dest")
	sys.MustCreateTable("F", "fno", "dest")
	for _, r := range [][]string{{"122", "Paris"}, {"123", "Paris"}, {"136", "Rome"}} {
		sys.MustInsert("Flights", r...)
		sys.MustInsert("F", r...)
	}
	return sys
}

func TestSystemQuickstartFlow(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	h1, err := sys.SubmitSQL(ctx, `SELECT 'Kramer', fno INTO ANSWER R
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER R CHOOSE 1`)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := sys.SubmitIR(ctx, "{R(Kramer, y)} R(Jerry, y) :- Flights(y, Paris)")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Err() != nil || r2.Err() != nil {
		t.Fatalf("errs %v/%v", r1.Err(), r2.Err())
	}
	if r1.Answer.Tuples[0].Args[1].Value != r2.Answer.Tuples[0].Args[1].Value {
		t.Fatal("not coordinated")
	}
	if sys.Stats().Answered != 2 {
		t.Fatalf("stats = %+v", sys.Stats())
	}
}

func TestSubmitAfterCloseIsErrClosed(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	sys.Close()
	sys.Close() // idempotent
	if _, err := sys.SubmitIR(ctx, "{} R(A, x) :- F(x, Paris)"); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitIR after close: %v, want ErrClosed", err)
	}
	if _, err := sys.SubmitSQL(ctx, `SELECT 'A', fno INTO ANSWER R
WHERE fno IN (SELECT fno FROM F WHERE dest='Paris') CHOOSE 1`); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitSQL after close: %v, want ErrClosed", err)
	}
	if _, err := sys.SubmitBatch(ctx, []*Query{MustParseIR("{} R(A, x) :- F(x, Paris)")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after close: %v, want ErrClosed", err)
	}
}

func TestSubmitCancelledContext(t *testing.T) {
	sys := flightsSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.SubmitIR(ctx, "{} R(A, x) :- F(x, Paris)"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := sys.Stats(); st.Submitted != 0 {
		t.Fatalf("cancelled submit reached the engine: %+v", st)
	}
}

// TestWaitContextCancelKeepsResult is the context-semantics contract: a
// cancelled Wait returns ctx.Err() without consuming the query's result,
// which a later Wait still retrieves; and once retrieved, further Waits
// return the cached result even with a cancelled context.
func TestWaitContextCancelKeepsResult(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	// A query whose partner has not arrived: Wait must block.
	h1, err := sys.SubmitIR(ctx, "{R(B, x)} R(A, x) :- F(x, Paris)")
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := h1.Wait(cctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait on pending query with cancelled ctx: %v, want context.Canceled", err)
	}
	tctx, tcancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer tcancel()
	if _, err := h1.Wait(tctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait timeout: %v, want context.DeadlineExceeded", err)
	}
	// Partner arrives; the earlier cancellations must not have lost the
	// result.
	h2, err := sys.SubmitIR(ctx, "{R(A, y)} R(B, y) :- F(y, Paris)")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Err() != nil {
		t.Fatalf("r1 = %v", r1.Err())
	}
	// Result is cached: a cancelled context no longer matters (the cached
	// result must win deterministically, not by select coin flip), and
	// repeated Waits agree.
	for i := 0; i < 50; i++ {
		again, err := h1.Wait(cctx)
		if err != nil || again.Status != r1.Status {
			t.Fatalf("re-Wait %d with cancelled ctx: %v / %v", i, again, err)
		}
	}
	if _, err := h2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestResultErrTyped(t *testing.T) {
	ctx := context.Background()

	// Stale: a loner expires once the staleness bound passes.
	sys := flightsSystem(t, WithStaleAfter(time.Nanosecond))
	h, err := sys.SubmitIR(ctx, "{R(B, x)} R(A, x) :- F(x, Paris)")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	if n := sys.ExpireStale(); n != 1 {
		t.Fatalf("expired %d", n)
	}
	r, err := h.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(r.Err(), ErrStale) {
		t.Fatalf("stale result err = %v, want ErrStale", r.Err())
	}
	var qe *QueryError
	if !errors.As(r.Err(), &qe) || qe.Status != StatusStale {
		t.Fatalf("QueryError = %+v", qe)
	}

	// Unsafe: a postcondition unifying with two pending heads is rejected
	// at admission (set-at-a-time keeps both heads pending).
	sys2 := flightsSystem(t, WithMode(SetAtATime))
	if _, err := sys2.SubmitIR(ctx, "{S(A, x)} R(A, x) :- F(x, Paris)"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys2.SubmitIR(ctx, "{S(B, y)} R(B, y) :- F(y, Paris)"); err != nil {
		t.Fatal(err)
	}
	h3, err := sys2.SubmitIR(ctx, "{R(w, v)} S(C, v) :- F(v, Paris) ∧ F(w, Paris)")
	if err != nil {
		t.Fatal(err)
	}
	r3, err := h3.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(r3.Err(), ErrUnsafe) {
		t.Fatalf("unsafe result err = %v (status %v), want ErrUnsafe", r3.Err(), r3.Status)
	}

	// Rejected: coordination matched but the data yields no rows.
	sys3 := flightsSystem(t)
	ha, err := sys3.SubmitIR(ctx, "{R(B, x)} R(A, x) :- F(x, Atlantis)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys3.SubmitIR(ctx, "{R(A, y)} R(B, y) :- F(y, Atlantis)"); err != nil {
		t.Fatal(err)
	}
	ra, err := ha.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(ra.Err(), ErrRejected) {
		t.Fatalf("rejected result err = %v, want ErrRejected", ra.Err())
	}
}

func TestParseErrorsCarryOffsets(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	var pe *ParseError

	_, err := sys.SubmitSQL(ctx, "SELECT 'A', fno INTO NOWHERE")
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("SQL err = %v, want *ParseError", err)
	}
	if pe.Offset <= 0 {
		t.Fatalf("SQL parse offset = %d", pe.Offset)
	}

	pe = nil
	_, err = sys.SubmitIR(ctx, "{R(B, x)} R(A, x :- F(x, Paris)")
	if err == nil || !errors.As(err, &pe) {
		t.Fatalf("IR err = %v, want *ParseError", err)
	}
	if pe.Offset <= 0 {
		t.Fatalf("IR parse offset = %d", pe.Offset)
	}

	if _, err := ParseIR("{} R(A, x) :- F(x, Paris)"); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitBatchMatchesSingles drives identical seeded workloads through
// SubmitBatch and through one-at-a-time Submit, across both modes, and
// requires identical answered/failed counts — the batch fast path is an
// amortisation, not a semantics change.
func TestSubmitBatchMatchesSingles(t *testing.T) {
	g := workload.NewGraph(workload.Config{N: 600, AvgDeg: 8, Seed: 9, Airports: 25})
	ctx := context.Background()

	for _, mode := range []Mode{Incremental, SetAtATime} {
		gen := workload.NewGen(g, 9)
		gen.DistinctRels = true
		qs := gen.Interleave(gen.TwoWayBest(g.FriendPairs(60, 9)))

		run := func(batched bool) Stats {
			sys, err := Open(WithMode(mode), WithShards(4), WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Close()
			if err := workload.PopulateDB(sys.DB(), g); err != nil {
				t.Fatal(err)
			}
			var handles []*Handle
			if batched {
				var err error
				handles, err = sys.SubmitBatch(ctx, qs)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				for _, q := range qs {
					h, err := sys.Submit(ctx, q)
					if err != nil {
						t.Fatal(err)
					}
					handles = append(handles, h)
				}
			}
			sys.Flush()
			st := sys.Stats()
			// Every delivered handle must resolve; drain those already done.
			done := 0
			for _, h := range handles {
				hctx, hcancel := context.WithTimeout(ctx, 10*time.Millisecond)
				if _, err := h.Wait(hctx); err == nil {
					done++
				}
				hcancel()
			}
			if done != st.Answered+st.Rejected+st.RejectedUnsafe {
				t.Fatalf("mode %v batched=%v: %d resolved handles vs stats %+v", mode, batched, done, st)
			}
			return st
		}

		single := run(false)
		batch := run(true)
		if single.Answered != batch.Answered || single.Rejected != batch.Rejected ||
			single.RejectedUnsafe != batch.RejectedUnsafe || single.Pending != batch.Pending {
			t.Fatalf("mode %v: single %+v vs batch %+v", mode, single, batch)
		}
		if single.Answered == 0 {
			t.Fatalf("mode %v: workload never coordinated", mode)
		}
		// The whole point: the batch run resolved every route in one pass
		// and locked each touched shard once, instead of once per query.
		if batch.RouterPasses != 1 {
			t.Fatalf("mode %v: batch took %d router passes", mode, batch.RouterPasses)
		}
		if batch.SubmitLocks > 4 {
			t.Fatalf("mode %v: batch took %d submit locks for 4 shards", mode, batch.SubmitLocks)
		}
		if single.RouterPasses != len(qs) {
			t.Fatalf("mode %v: singles took %d router passes for %d queries", mode, single.RouterPasses, len(qs))
		}
	}
}

func TestSubmitBatchEmptyAndParseSQLBatch(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	hs, err := sys.SubmitBatch(ctx, nil)
	if err != nil || len(hs) != 0 {
		t.Fatalf("empty batch: %v, %v", hs, err)
	}
	// Batches built from ParseSQL coordinate like direct submissions.
	var qs []*Query
	for _, who := range []struct{ me, partner string }{{"Kramer", "Jerry"}, {"Jerry", "Kramer"}} {
		tr, err := sys.ParseSQL(fmt.Sprintf(`SELECT '%s', fno INTO ANSWER R
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('%s', fno) IN ANSWER R CHOOSE 1`, who.me, who.partner))
		if err != nil {
			t.Fatal(err)
		}
		qs = append(qs, tr.Query)
	}
	handles, err := sys.SubmitBatch(ctx, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		r, err := h.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Err() != nil {
			t.Fatalf("batch member failed: %v", r.Err())
		}
	}
}

func TestSystemSetAtATime(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t, WithMode(SetAtATime))
	h1, _ := sys.SubmitIR(ctx, "{R(B, x)} R(A, x) :- F(x, Rome)")
	h2, _ := sys.SubmitIR(ctx, "{R(A, y)} R(B, y) :- F(y, Rome)")
	sys.Flush()
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Err() != nil || r2.Err() != nil {
		t.Fatalf("errs %v/%v", r1.Err(), r2.Err())
	}
	if r1.Answer.Tuples[0].Args[1].Value != "136" {
		t.Fatalf("flight = %v", r1.Answer.Tuples[0])
	}
}

func TestSystemCoordinateAndExtensions(t *testing.T) {
	sys := flightsSystem(t)
	out, err := sys.Coordinate([]*Query{
		mustParseWithID(1, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
		mustParseWithID(2, "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Answers) != 2 {
		t.Fatalf("answers = %v", out.Answers)
	}
	tr, err := sys.ParseSQL(`SELECT 'K', fno INTO ANSWER R
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris') CHOOSE 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Query.Body) != 1 || tr.Query.Body[0].Rel != "Flights" {
		t.Fatalf("query = %s", tr.Query)
	}
}

func TestSystemRunBackground(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sys := flightsSystem(t,
		WithMode(SetAtATime),
		WithStaleAfter(30*time.Millisecond),
		WithFlushInterval(10*time.Millisecond),
	)
	go sys.Run(ctx)
	h1, _ := sys.SubmitIR(ctx, "{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)")
	h2, _ := sys.SubmitIR(ctx, "{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)")
	wctx, wcancel := context.WithTimeout(ctx, 5*time.Second)
	defer wcancel()
	for _, h := range []*Handle{h1, h2} {
		r, err := h.Wait(wctx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Err() != nil {
			t.Fatalf("background flush never answered: %v", r.Err())
		}
	}
	// A loner goes stale via the background loop.
	h3, _ := sys.SubmitIR(ctx, "{R(Q, z)} R(P, z) :- F(z, Paris)")
	r3, err := h3.Wait(wctx)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(r3.Err(), ErrStale) {
		t.Fatalf("r3 = %v", r3.Err())
	}
}

func mustParseWithID(id QueryID, text string) *Query {
	q := MustParseIR(text)
	q.ID = id
	return q
}

// TestSubmitBulkPublicAPI drives the root SubmitBulk surface: an unordered
// bulk load answers its closed pairs before returning, matches the
// SubmitBatch+Flush outcome on a set-at-a-time System, and honors the
// WithBulkDeferFlush option; context gating and ErrClosed behave as the
// other submission paths.
func TestSubmitBulkPublicAPI(t *testing.T) {
	ctx := context.Background()
	qs := func() []*Query {
		return []*Query{
			MustParseIR("{R(Jerry, x)} R(Kramer, x) :- F(x, Paris)"),
			MustParseIR("{R(Kramer, y)} R(Jerry, y) :- F(y, Paris)"),
			MustParseIR("{Lone(A, z)} Lone(B, z) :- F(z, Oslo)"),
		}
	}

	sys := flightsSystem(t, WithShards(4))
	handles, err := sys.SubmitBulk(ctx, qs())
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != 3 {
		t.Fatalf("%d handles", len(handles))
	}
	for i := 0; i < 2; i++ {
		r, err := handles[i].Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != StatusAnswered {
			t.Fatalf("bulk member %d: %v (%s)", i, r.Status, r.Detail)
		}
	}
	wctx, wcancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer wcancel()
	if _, err := handles[2].Wait(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("partnerless bulk member resolved early: %v", err)
	}
	if st := sys.Stats(); st.BulkLoads != 1 || st.RouterPasses != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Deferred: nothing coordinates until Flush.
	def := flightsSystem(t, WithMode(SetAtATime), WithShards(2))
	dh, err := def.SubmitBulk(ctx, qs()[:2], WithBulkDeferFlush())
	if err != nil {
		t.Fatal(err)
	}
	if st := def.Stats(); st.Pending != 2 || st.BulkFlushes != 0 {
		t.Fatalf("deferred bulk stats %+v", st)
	}
	def.Flush()
	for i, h := range dh {
		r, err := h.Wait(ctx)
		if err != nil || r.Status != StatusAnswered {
			t.Fatalf("deferred member %d: %v %v", i, r.Status, err)
		}
	}

	// Context and lifecycle gates.
	cctx, ccancel := context.WithCancel(ctx)
	ccancel()
	if _, err := sys.SubmitBulk(cctx, qs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled-context bulk: %v", err)
	}
	closed := flightsSystem(t)
	closed.Close()
	if _, err := closed.SubmitBulk(ctx, qs()); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed-system bulk: %v", err)
	}
}
