package entangle

import (
	"context"
	"errors"
	"strings"
	"time"

	"entangle/internal/engine"
	"entangle/internal/eqsql"
	"entangle/internal/ext"
	"entangle/internal/ir"
	"entangle/internal/match"
	"entangle/internal/memdb"
)

// Mode selects when the matching algorithm runs.
type Mode = engine.Mode

// Evaluation modes (Section 5.1: "a parameter in our implementation allows
// us to switch between the two").
const (
	// Incremental runs matching on the affected partition upon every query
	// arrival.
	Incremental = engine.Incremental
	// SetAtATime buffers queries and evaluates the whole pending set on
	// Flush (or every FlushEvery submissions, or every Run tick).
	SetAtATime = engine.SetAtATime
)

// Status is the terminal state of a submitted query.
type Status = engine.Status

// Terminal statuses.
const (
	StatusAnswered = engine.StatusAnswered
	StatusUnsafe   = engine.StatusUnsafe
	StatusRejected = engine.StatusRejected
	StatusStale    = engine.StatusStale
)

// Stats are cumulative engine counters; see engine.Stats for field
// semantics (PerShard, Flushes, RouterPasses, …).
type Stats = engine.Stats

// Durability is the write-ahead log's fsync policy (see WithDurability).
type Durability = engine.Durability

// WAL fsync policies for WithDurability.
const (
	// DurabilityOff buffers log appends and flushes them to the OS on a
	// background cadence without ever calling fsync: near-zero overhead on
	// the arrival path; a crash loses at most the unflushed tail.
	DurabilityOff = engine.DurabilityOff
	// DurabilityBatch group-commits on the background cadence: one fsync
	// amortises over every append in the window (bounded loss).
	DurabilityBatch = engine.DurabilityBatch
	// DurabilitySync fsyncs before each submission returns, with group
	// commit — concurrent submitters share one fsync (no loss).
	DurabilitySync = engine.DurabilitySync
)

// Query is an entangled query in the {C} H :- B intermediate
// representation; build one with ParseIR / MustParseIR or via
// (*System).ParseSQL.
type Query = ir.Query

// QueryID identifies a submitted query (engine-assigned).
type QueryID = ir.QueryID

// Answer carries the coordinated tuples of an answered query.
type Answer = ir.Answer

// Event is one entry of the audit trail (see WithHistory).
type Event = engine.Event

// config collects the functional options.
type config struct {
	engine        engine.Config
	flushInterval time.Duration
}

// Option configures a System at Open time.
type Option func(*config)

// WithMode selects incremental (default) or set-at-a-time evaluation.
func WithMode(m Mode) Option { return func(c *config) { c.engine.Mode = m } }

// WithShards partitions the engine's pending set for parallel coordination
// (0 = one shard per CPU; 1 = the single-lock engine).
func WithShards(n int) Option { return func(c *config) { c.engine.Shards = n } }

// WithStaleAfter bounds how long queries wait for coordination partners
// (0 = forever). Expiry happens on ExpireStale calls or Run's ticker.
func WithStaleAfter(d time.Duration) Option { return func(c *config) { c.engine.StaleAfter = d } }

// WithFlushEvery auto-flushes a shard after n submissions landed on it in
// set-at-a-time mode. The counter is per shard: with S shards and
// spread-out traffic, up to S×n submissions may buffer engine-wide before
// the first auto-flush.
func WithFlushEvery(n int) Option { return func(c *config) { c.engine.FlushEvery = n } }

// WithFlushInterval sets Run's background flush/staleness/GC tick
// (default 100ms).
func WithFlushInterval(d time.Duration) Option { return func(c *config) { c.flushInterval = d } }

// WithParallelism sizes the engine's persistent evaluation worker pool —
// the goroutines that run coordination rounds out of the shard locks
// during flushes (0 = GOMAXPROCS).
func WithParallelism(n int) Option { return func(c *config) { c.engine.Parallelism = n } }

// WithSeed drives CHOOSE 1 randomness (0 = deterministic first choice).
func WithSeed(seed int64) Option { return func(c *config) { c.engine.Seed = seed } }

// WithAnswerSchemas declares ANSWER relation columns for SQL aggregation
// subqueries (Section 6 extension).
func WithAnswerSchemas(schemas map[string][]string) Option {
	return func(c *config) { c.engine.AnswerSchemas = schemas }
}

// WithHistory retains the last n lifecycle events per engine shard as an
// audit trail, readable through History (0, the default, disables it).
func WithHistory(n int) Option { return func(c *config) { c.engine.HistorySize = n } }

// WithPlanCacheSize bounds the engine's shape-keyed compiled-plan cache
// (entries, LRU eviction): coordinated components whose combined queries
// share a shape reuse one compiled plan instead of re-running join-order
// selection per evaluation. 0, the default, picks the engine's default
// capacity (512); a negative n disables caching.
func WithPlanCacheSize(n int) Option { return func(c *config) { c.engine.PlanCacheSize = n } }

// WithDataDir enables durability: every externally visible engine
// transition (admissions, deliveries, expiries, DDL) is write-ahead logged
// to dir, periodic checkpoints snapshot the database and pending set, and
// Open recovers deterministically from whatever the directory holds — a
// recovered System is observationally equivalent to one that never
// crashed. Data loading on a durable System must go through Load /
// MustCreateTable / MustInsert (they register with the log); writing to
// DB() directly bypasses durability.
func WithDataDir(dir string) Option { return func(c *config) { c.engine.DataDir = dir } }

// WithDurability selects the WAL fsync policy (default DurabilityOff);
// meaningful only together with WithDataDir.
func WithDurability(d Durability) Option { return func(c *config) { c.engine.Durability = d } }

// WithCheckpointEvery sets the periodic-checkpoint cadence driven by Run's
// ticker (default 1 minute; negative disables periodic checkpoints).
// Checkpoints pause the engine briefly (they quiesce all operations to
// capture a consistent cut) and truncate the log behind themselves.
func WithCheckpointEvery(d time.Duration) Option {
	return func(c *config) { c.engine.CheckpointEvery = d }
}

// WithMaxPending caps the engine-wide pending-query count: submissions that
// would push past the cap are shed with ErrOverloaded before any WAL append
// or coordination work (0 = unlimited). The cap is approximate under
// concurrency — cheap on the admit path, precise enough to bound memory.
func WithMaxPending(n int) Option { return func(c *config) { c.engine.MaxPending = n } }

// System is the top-level façade of the entangled-queries library: a
// database substrate plus an asynchronous coordination engine, wired to the
// entangled-SQL front end, the matching algorithm, and the Section 6
// extensions. Safe for concurrent use.
type System struct {
	db  *memdb.DB
	eng *engine.Engine
	cfg config
}

// Open creates a System.
//
//	sys, err := entangle.Open(entangle.WithSeed(42))
//	defer sys.Close()
//
// Without WithDataDir the System starts empty and the error is always nil.
// With WithDataDir, Open recovers the database and the pending query set
// from the directory's checkpoint and write-ahead log (see WithDataDir);
// recovered pending queries are reachable through Engine().Recovered().
func Open(opts ...Option) (*System, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	db := memdb.New()
	eng, err := engine.Open(db, cfg.engine)
	if err != nil {
		return nil, err
	}
	return &System{db: db, eng: eng, cfg: cfg}, nil
}

// DB exposes the underlying database for data loading and inspection.
func (s *System) DB() *memdb.DB { return s.db }

// Engine exposes the coordination engine for advanced control.
func (s *System) Engine() *engine.Engine { return s.eng }

// MustCreateTable creates a database table, panicking on error (setup code).
// On a durable System the statement is registered with the write-ahead log
// so recovery replays it.
func (s *System) MustCreateTable(name string, cols ...string) {
	if !s.durable() {
		s.db.MustCreateTable(name, cols...)
		return
	}
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(name)
	b.WriteString(" (")
	b.WriteString(strings.Join(cols, ", "))
	b.WriteString(");")
	if err := s.Load(b.String()); err != nil {
		panic(err)
	}
}

// MustInsert inserts a row, panicking on error (setup code). On a durable
// System the statement is registered with the write-ahead log so recovery
// replays it.
func (s *System) MustInsert(table string, values ...string) {
	if !s.durable() {
		s.db.MustInsert(table, values...)
		return
	}
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(table)
	b.WriteString(" VALUES (")
	for i, v := range values {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('\'')
		b.WriteString(strings.ReplaceAll(v, "'", "''"))
		b.WriteByte('\'')
	}
	b.WriteString(");")
	if err := s.Load(b.String()); err != nil {
		panic(err)
	}
}

// Load runs a DDL/DML script (CREATE TABLE / INSERT / CREATE INDEX / DROP
// TABLE statements separated by semicolons) against the database. On a
// durable System the script is write-ahead logged and replayed by
// recovery — always load data through here (or MustCreateTable /
// MustInsert), never through DB() directly, when WithDataDir is in use.
func (s *System) Load(script string) error { return s.eng.Load(script) }

// Checkpoint takes an on-demand durability checkpoint: the database and
// pending set are snapshotted to the data directory and the write-ahead
// log is truncated behind them. The engine pauses briefly (a checkpoint
// captures a consistent cut). Returns engine.ErrNotDurable without
// WithDataDir.
func (s *System) Checkpoint() error { return s.eng.Checkpoint() }

// durable reports whether this System logs to a data directory.
func (s *System) durable() bool { return s.cfg.engine.DataDir != "" }

// Submit enqueues an IR query for asynchronous coordinated answering. The
// context gates admission only: a cancelled context fails the call, but a
// query already admitted keeps running (await it with Handle.Wait, whose
// context controls the wait). Returns ErrClosed after Close.
func (s *System) Submit(ctx context.Context, q *ir.Query) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := s.eng.Submit(q)
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	return newHandle(h), nil
}

// SubmitSQL parses an entangled-SQL statement against the system's schema
// and enqueues it. Syntax failures carry a *ParseError (errors.As).
func (s *System) SubmitSQL(ctx context.Context, sql string) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := s.eng.SubmitSQL(sql)
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	return newHandle(h), nil
}

// SubmitIR parses a query in the intermediate-representation text syntax
// ({C} H :- B) and enqueues it.
func (s *System) SubmitIR(ctx context.Context, irText string) (*Handle, error) {
	q, err := ir.Parse(0, irText)
	if err != nil {
		return nil, err
	}
	return s.Submit(ctx, q)
}

// SubmitBatch enqueues many queries at once, returning one handle per query
// in input order. The batch takes a single routing pass and one lock
// acquisition per touched engine shard, amortising the per-query submission
// overhead for bulk loads; outcomes are identical to submitting the queries
// one at a time in order. Returns ErrClosed after Close.
func (s *System) SubmitBatch(ctx context.Context, qs []*ir.Query) ([]*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ehs, err := s.eng.SubmitBatch(qs)
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	handles := make([]*Handle, len(ehs))
	for i, eh := range ehs {
		handles[i] = newHandle(eh)
	}
	return handles, nil
}

// BulkOption configures one SubmitBulk call.
type BulkOption func(*engine.BulkOptions)

// WithBulkDeferFlush makes SubmitBulk ingest without running its per-shard
// coordination round: closed components stay pending until the next Flush
// (explicit, FlushEvery-triggered, or Run's tick in set-at-a-time mode —
// incremental-mode systems must call Flush themselves after a deferred
// bulk). Use it to stage several bulk loads and coordinate them as one
// round.
func WithBulkDeferFlush() BulkOption {
	return func(o *engine.BulkOptions) { o.DeferFlush = true }
}

// SubmitBulk enqueues many queries at once as an explicitly UNORDERED bulk
// load — set-at-a-time semantics per batch, the paper's native granularity.
// Unlike SubmitBatch, which pays per-query incremental admission to stay
// equivalent to one-at-a-time submission, SubmitBulk treats the batch as a
// set: one routing pass resolves it, each touched engine shard ingests its
// group under one lock with atoms indexed and unifiability edges built
// set-at-a-time, the admission safety check runs once over the ingested
// set, and one flush per touched shard coordinates the resulting closed
// components. For a batch with no interleaved singles the answered set and
// per-query results equal SubmitBatch on a set-at-a-time System followed by
// Flush; the difference — and the caveat to mind on incremental Systems —
// is that components closing mid-batch are coordinated whole at the end
// rather than at the closing arrival, so later batch members can still
// join them. Queries left open keep their staleness deadline, measured
// from the SubmitBulk call. Handles are returned in input order; returns
// ErrClosed after Close.
func (s *System) SubmitBulk(ctx context.Context, qs []*ir.Query, opts ...BulkOption) ([]*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var bo engine.BulkOptions
	for _, o := range opts {
		o(&bo)
	}
	ehs, err := s.eng.SubmitBulk(qs, bo)
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	handles := make([]*Handle, len(ehs))
	for i, eh := range ehs {
		handles[i] = newHandle(eh)
	}
	return handles, nil
}

// Flush forces a set-at-a-time evaluation round.
func (s *System) Flush() { s.eng.Flush() }

// ExpireStale fails every pending query older than the staleness bound and
// returns how many were expired (no-op without WithStaleAfter).
func (s *System) ExpireStale() int { return s.eng.ExpireStale() }

// GC retires relation families with no pending members, reclaiming router
// and index state accreted by long-gone ANSWER relations. Run does this
// automatically; GC exists for systems driven without Run.
func (s *System) GC() int { return s.eng.GCFamilies() }

// Stats returns a snapshot of the engine counters.
func (s *System) Stats() Stats { return s.eng.Stats() }

// History returns the retained audit events merged across shards, oldest
// first, and the total number ever recorded. Nil without WithHistory.
func (s *System) History() ([]Event, int) { return s.eng.History() }

// Run services the system until the context is cancelled: it flushes
// (set-at-a-time mode), expires stale queries, and sweeps retired relation
// families on every tick (WithFlushInterval, default 100ms). It blocks;
// start it as a goroutine:
//
//	go sys.Run(ctx)
func (s *System) Run(ctx context.Context) { s.eng.Run(ctx, s.cfg.flushInterval) }

// Close shuts the system down: pending queries fail as stale (locally —
// on a durable System a final checkpoint preserves them on disk first, so
// reopening the data directory re-submits them) and future submissions
// return ErrClosed. Idempotent.
func (s *System) Close() { s.eng.Close() }

// Coordinate answers a batch of IR queries synchronously (the set-at-a-time
// pipeline of Section 4, bypassing the engine's pending set).
func (s *System) Coordinate(queries []*ir.Query) (*match.Outcome, error) {
	return match.Coordinate(s.db, queries, match.CoordinateOptions{EnforceSafety: true})
}

// CoordinateExtended answers a batch with the Section 6 extensions enabled
// (CHOOSE k, aggregation constraints, soft preferences).
func (s *System) CoordinateExtended(queries []*ir.Query, aggs map[ir.QueryID][]eqsql.AggConstraint, opt ext.Options) (*ext.Outcome, error) {
	return ext.Coordinate(s.db, queries, aggs, opt)
}

// ParseSQL translates entangled SQL against the system's schema without
// submitting it; useful for inspecting the intermediate representation.
// Unlike SubmitSQL it accepts the Section 6 extension constructs, returning
// their constraints in Translated.Aggs — those are honored ONLY by
// CoordinateExtended. Submitting tr.Query through Submit/SubmitBatch is
// fine for extension-free statements, but would silently drop any Aggs, so
// check that field first.
func (s *System) ParseSQL(sql string) (*eqsql.Translated, error) {
	return eqsql.Parse(0, sql, eqsql.DBSchema{DB: s.db}, eqsql.Options{
		AllowExtensions: true,
		AnswerSchemas:   s.cfg.engine.AnswerSchemas,
	})
}

// ParseIR parses a query in the IR text syntax ({C} H :- B) without
// submitting it.
func ParseIR(text string) (*ir.Query, error) { return ir.Parse(0, text) }

// MustParseIR is ParseIR that panics on error; for tests and examples with
// literal query text.
func MustParseIR(text string) *ir.Query { return ir.MustParse(0, text) }

// wrapSubmitErr maps the engine's closed sentinel to the public one.
func wrapSubmitErr(err error) error {
	if errors.Is(err, engine.ErrClosed) {
		return ErrClosed
	}
	return err
}
