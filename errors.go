package entangle

import (
	"errors"
	"fmt"

	"entangle/internal/engine"
	"entangle/internal/ir"
)

// Sentinel errors of the public API, for use with errors.Is.
var (
	// ErrClosed is returned by submissions to a closed System.
	ErrClosed = errors.New("entangle: system closed")
	// ErrStale is wrapped by Result.Err when a query waited longer than the
	// staleness bound without acquiring all coordination partners, or when
	// the system shut down while the query was still pending.
	ErrStale = errors.New("entangle: query went stale before coordination completed")
	// ErrUnsafe is wrapped by Result.Err when the admission safety check
	// rejected the query (one of its postconditions would have two or more
	// unifying heads in the pending workload — Section 3.1.1 of the paper).
	ErrUnsafe = errors.New("entangle: query rejected by the safety check")
	// ErrRejected is wrapped by Result.Err when matching or evaluation
	// determined the query is permanently unanswerable (unifier clash, no
	// global unifier, or the combined query returned no rows).
	ErrRejected = errors.New("entangle: query cannot be answered")

	// ErrOverloaded is returned by Submit/SubmitSQL/SubmitIR/SubmitBatch/
	// SubmitBulk when the WithMaxPending cap would be exceeded: the
	// submission was shed before any durability or coordination work. It is
	// the engine's sentinel verbatim, so errors.Is matches the same failure
	// whether it surfaces here, through the server's reply code, or from a
	// remote client.
	ErrOverloaded = engine.ErrOverloaded
	// ErrWALPoisoned is returned (wrapped) by submissions on a durable
	// System whose write-ahead log saw an append/fsync failure: the engine
	// fails fast instead of acknowledging writes the log may have lost, and
	// a successful Checkpoint into a fresh epoch clears the state. The
	// engine's sentinel verbatim, like ErrOverloaded.
	ErrWALPoisoned = engine.ErrWALPoisoned
)

// ParseError is a syntax error from the entangled-SQL or IR-text parsers,
// carrying the byte offset where parsing failed. Recover it from any
// SubmitSQL / SubmitIR / ParseSQL / ParseIR error with errors.As:
//
//	if _, err := sys.SubmitSQL(ctx, src); err != nil {
//		var pe *entangle.ParseError
//		if errors.As(err, &pe) {
//			fmt.Printf("syntax error at byte %d: %s\n", pe.Offset, pe.Msg)
//		}
//	}
type ParseError = ir.ParseError

// QueryError is the typed error form of a non-answered Result, produced by
// Result.Err. It wraps the matching sentinel (ErrStale, ErrUnsafe,
// ErrRejected), so errors.Is works through it.
type QueryError struct {
	QueryID ir.QueryID
	Status  Status
	Detail  string
}

// Error renders the failure with its engine-assigned query ID.
func (e *QueryError) Error() string {
	if e.Detail == "" {
		return fmt.Sprintf("entangle: query %d %s", e.QueryID, e.Status)
	}
	return fmt.Sprintf("entangle: query %d %s: %s", e.QueryID, e.Status, e.Detail)
}

// Unwrap maps the terminal status to its sentinel.
func (e *QueryError) Unwrap() error {
	switch e.Status {
	case StatusStale:
		return ErrStale
	case StatusUnsafe:
		return ErrUnsafe
	case StatusRejected:
		return ErrRejected
	default:
		return nil
	}
}
