package entangle

import (
	"context"

	"entangle/internal/engine"
	"entangle/internal/ir"
)

// Result is the single terminal outcome of a submitted query.
type Result struct {
	QueryID ir.QueryID
	Status  Status
	Answer  *ir.Answer // non-nil iff Status == StatusAnswered
	Detail  string     // human-readable cause for non-answered statuses
}

// Err returns nil for an answered result, and otherwise a *QueryError
// wrapping the sentinel for the terminal status, so callers can branch with
// errors.Is(r.Err(), entangle.ErrStale) and friends.
func (r Result) Err() error {
	if r.Status == StatusAnswered {
		return nil
	}
	return &QueryError{QueryID: r.QueryID, Status: r.Status, Detail: r.Detail}
}

// Handle tracks an in-flight query. Exactly one Result is eventually
// delivered; Wait retrieves it any number of times, from any number of
// goroutines.
type Handle struct {
	id   ir.QueryID
	eh   *engine.Handle
	done chan struct{}
	res  Result // written once before done is closed
}

func newHandle(eh *engine.Handle) *Handle {
	return &Handle{id: eh.ID, eh: eh, done: make(chan struct{})}
}

// ID returns the engine-assigned query ID.
func (h *Handle) ID() ir.QueryID { return h.id }

// Wait blocks until the query's terminal Result is available or the context
// is done, whichever comes first. Cancellation returns ctx.Err() and does
// NOT lose the result: the query keeps running and a later Wait (with a
// fresh context) still retrieves its outcome. After the first successful
// Wait the result is cached, so repeated calls return it immediately —
// even with an already-done context, which is why an available result is
// checked before the context (Go selects among ready cases at random, and
// a caller re-Waiting with an expired context must not lose a coin flip).
func (h *Handle) Wait(ctx context.Context) (Result, error) {
	select {
	case <-h.done:
		return h.res, nil
	default:
	}
	select {
	case er := <-h.eh.Done():
		return h.publish(er), nil
	default:
	}
	select {
	case er := <-h.eh.Done():
		return h.publish(er), nil
	case <-h.done:
		return h.res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// publish caches the engine's single delivered result and wakes every other
// waiter. The engine sends exactly one result, so exactly one Wait call can
// receive it and reach here.
func (h *Handle) publish(er engine.Result) Result {
	h.res = Result{QueryID: er.QueryID, Status: er.Status, Answer: er.Answer, Detail: er.Detail}
	close(h.done)
	return h.res
}
