package entangle

// Tests for the public resilience surface: the WithMaxPending overload cap
// and its errors.Is-able sentinel through the root API.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestMaxPendingOverloadTyped(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t, WithMaxPending(2), WithStaleAfter(10*time.Millisecond), WithShards(1))

	// Fill the cap with partnerless queries.
	for i := 1; i <= 2; i++ {
		irText := fmt.Sprintf("{P%d(A, x)} P%d(B, x) :- F(x, Rome)", i, i)
		if _, err := sys.SubmitIR(ctx, irText); err != nil {
			t.Fatalf("submit %d under cap: %v", i, err)
		}
	}
	_, err := sys.SubmitIR(ctx, "{P3(A, x)} P3(B, x) :- F(x, Rome)")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("submit past cap: err = %v, want entangle.ErrOverloaded", err)
	}
	if _, err := sys.SubmitSQL(ctx, `SELECT 'A', fno INTO ANSWER P4
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Rome')
AND ('B', fno) IN ANSWER P4 CHOOSE 1`); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("SubmitSQL past cap: err = %v, want entangle.ErrOverloaded", err)
	}
	if got := sys.Stats().Overloaded; got != 2 {
		t.Fatalf("Stats.Overloaded = %d, want 2", got)
	}

	// Expiry drains the pending set; admission recovers.
	time.Sleep(15 * time.Millisecond)
	sys.ExpireStale()
	h1, err := sys.SubmitIR(ctx, "{R(J, x)} R(K, x) :- F(x, Rome)")
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	h2, err := sys.SubmitIR(ctx, "{R(K, y)} R(J, y) :- F(y, Rome)")
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	for i, h := range []*Handle{h1, h2} {
		r, err := h.Wait(ctx)
		if err != nil {
			t.Fatalf("pair %d wait: %v", i, err)
		}
		if r.Err() != nil {
			t.Fatalf("pair %d: %v", i, r.Err())
		}
	}
}
