// Command benchgate is the CI perf-regression gate: it diffs a freshly
// produced d3cbench JSON report against the pinned reference checked into
// the repository (BENCH_arrival.json and friends) and exits non-zero when a
// per-operation ALLOCATION count exceeds its pinned budget. Alloc counts
// are host-independent — the same code allocates the same everywhere — so
// they gate hard; per-op latency is printed for the log but never fails the
// build (CI runners are noisy). Row labels, not indexes, pair the reports,
// so the gate survives re-ordered or re-sized series.
//
// Usage:
//
//	benchgate -pinned BENCH_arrival.json -current bench-arrival.json
//	          [-slack 1.5] [-abs 4]
//
// -slack multiplies each pinned allocs/op budget (headroom for tiny CI
// workload sizes, where fixed costs amortise over fewer ops, and toolchain
// drift); -abs adds a flat allocs/op on top.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"entangle/internal/bench"
)

func main() {
	var (
		pinnedPath  = flag.String("pinned", "BENCH_arrival.json", "pinned reference report (checked in)")
		currentPath = flag.String("current", "bench-arrival.json", "freshly produced report to gate")
		slack       = flag.Float64("slack", 0, "multiplicative headroom on pinned alloc budgets (0 = default 1.5)")
		abs         = flag.Float64("abs", 0, "flat allocs/op headroom on top (0 = default 4)")
	)
	flag.Parse()

	pinned, err := bench.ReadReport(*pinnedPath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	current, err := bench.ReadReport(*currentPath)
	if err != nil {
		log.Fatalf("benchgate: %v", err)
	}
	out := bench.CompareReports(pinned, current, bench.GateOptions{AllocSlack: *slack, AllocAbs: *abs})
	for _, a := range out.Advisories {
		fmt.Println("benchgate:", a)
	}
	if !out.OK() {
		for _, v := range out.Violations {
			fmt.Fprintln(os.Stderr, "benchgate: ALLOC REGRESSION:", v)
		}
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d alloc budget(s) exceeded vs %s\n", len(out.Violations), *pinnedPath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: PASS — %s within the alloc budgets of %s\n", *currentPath, *pinnedPath)
}
