// Command d3cd runs the D3C coordination server: an entangled-query engine
// over an in-memory database, exposed via the JSON line protocol of
// internal/server (including batched submission via the submit_batch op).
//
// Usage:
//
//	d3cd [-addr :7070] [-mode incremental|setatatime] [-stale 30s]
//	     [-flush-every 0] [-flush-interval 100ms] [-social N]
//	     [-data-dir DIR] [-durability off|batch|sync] [-checkpoint-every 1m]
//	     [-max-pending N] [-max-inflight N] [-write-timeout 10s]
//	     [-chaos-seed S]
//
// Resilience: -max-pending caps the engine-wide pending set (excess
// submissions shed with a typed "overloaded" reply), -max-inflight caps one
// connection's unresolved submissions, and -write-timeout bounds each reply
// write so a client that stops reading is torn down instead of wedging the
// server. -chaos-seed installs a deterministic fault injector under every
// accepted connection (for drills only — never in production): faults are
// drawn replayably from the seed and reported via the stats op.
//
// With -data-dir the server runs durably: every externally visible engine
// transition is written ahead to a WAL in DIR, periodic checkpoints bound
// the log, and a restart recovers the database and still-pending queries
// deterministically (see the root package's Durability docs). -durability
// picks the fsync policy; a clean shutdown always ends with a checkpoint.
//
// With -social N the server preloads the flight-booking social substrate
// (Friends/User tables over an N-user synthetic social graph) so clients
// can immediately run the paper's workloads. Without it the database starts
// empty and clients are expected to load their own schema via a sidecar.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"entangle"
	"entangle/internal/fault"
	"entangle/internal/server"
	"entangle/internal/workload"
)

func main() {
	var (
		addr          = flag.String("addr", ":7070", "listen address")
		mode          = flag.String("mode", "incremental", "evaluation mode: incremental or setatatime")
		shards        = flag.Int("shards", 0, "engine shards (0 = one per CPU, 1 = single-lock engine)")
		stale         = flag.Duration("stale", 30*time.Second, "staleness bound for pending queries (0 = never)")
		flushEvery    = flag.Int("flush-every", 0, "set-at-a-time: auto-flush a shard after this many submissions landed on it (per shard, 0 = timer only)")
		flushInterval = flag.Duration("flush-interval", 100*time.Millisecond, "background flush/staleness tick")
		social        = flag.Int("social", 0, "preload a synthetic social graph with this many users (0 = empty database)")
		seed          = flag.Int64("seed", 42, "seed for the social graph and CHOOSE 1 randomness")
		dbFile        = flag.String("db", "", "database snapshot file: loaded on start if present, saved on shutdown")
		dataDir       = flag.String("data-dir", "", "durability directory (WAL + checkpoints); enables crash recovery")
		durability    = flag.String("durability", "batch", "WAL fsync policy with -data-dir: off, batch or sync")
		ckptEvery     = flag.Duration("checkpoint-every", time.Minute, "checkpoint interval with -data-dir (<0 = only on shutdown)")
		maxPending    = flag.Int("max-pending", 0, "cap on engine-wide pending queries; excess submissions are shed with a typed overloaded error (0 = uncapped)")
		maxInFlight   = flag.Int("max-inflight", 0, "cap on one connection's unresolved submissions (0 = default 1024, <0 = uncapped)")
		writeTimeout  = flag.Duration("write-timeout", 0, "per-reply write deadline; a client that stops reading is disconnected (0 = default 10s, <0 = none)")
		chaosSeed     = flag.Int64("chaos-seed", 0, "install a deterministic connection fault injector with this seed (0 = off; drills only)")
	)
	flag.Parse()
	if *dataDir != "" && *dbFile != "" {
		log.Fatal("d3cd: -db and -data-dir are mutually exclusive (the data directory already snapshots the database)")
	}

	var m entangle.Mode
	switch strings.ToLower(*mode) {
	case "incremental":
		m = entangle.Incremental
	case "setatatime", "set-at-a-time":
		m = entangle.SetAtATime
	default:
		log.Fatalf("d3cd: unknown mode %q", *mode)
	}

	opts := []entangle.Option{
		entangle.WithMode(m),
		entangle.WithShards(*shards),
		entangle.WithStaleAfter(*stale),
		entangle.WithFlushEvery(*flushEvery),
		entangle.WithFlushInterval(*flushInterval),
		entangle.WithSeed(*seed),
	}
	if *maxPending > 0 {
		opts = append(opts, entangle.WithMaxPending(*maxPending))
	}
	if *dataDir != "" {
		var pol entangle.Durability
		switch strings.ToLower(*durability) {
		case "off":
			pol = entangle.DurabilityOff
		case "batch":
			pol = entangle.DurabilityBatch
		case "sync":
			pol = entangle.DurabilitySync
		default:
			log.Fatalf("d3cd: unknown durability policy %q", *durability)
		}
		opts = append(opts,
			entangle.WithDataDir(*dataDir),
			entangle.WithDurability(pol),
			entangle.WithCheckpointEvery(*ckptEvery),
		)
	}
	sys, err := entangle.Open(opts...)
	if err != nil {
		log.Fatalf("d3cd: %v", err)
	}
	if *dataDir != "" {
		rec := sys.Engine().Recovered()
		log.Printf("d3cd: durable in %s (policy %s), recovered %d pending queries", *dataDir, strings.ToLower(*durability), len(rec))
	}
	db := sys.DB()
	if *dbFile != "" {
		if _, err := os.Stat(*dbFile); err == nil {
			if err := db.LoadFile(*dbFile); err != nil {
				log.Fatalf("d3cd: load %s: %v", *dbFile, err)
			}
			log.Printf("d3cd: loaded snapshot %s:\n%s", *dbFile, strings.TrimSpace(db.String()))
		}
	}
	if *social > 0 && len(db.TableNames()) == 0 {
		log.Printf("d3cd: generating social substrate with %d users…", *social)
		g := workload.NewGraph(workload.Config{N: *social, Seed: *seed})
		if err := workload.PopulateDB(db, g); err != nil {
			log.Fatalf("d3cd: %v", err)
		}
		log.Printf("d3cd: loaded %s", strings.TrimSpace(db.String()))
	}

	ctx, cancel := context.WithCancel(context.Background())
	go sys.Run(ctx)

	srv := server.New(sys.Engine())
	srv.MaxInFlight = *maxInFlight
	srv.WriteTimeout = *writeTimeout
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("d3cd: %v", err)
	}
	if *chaosSeed != 0 {
		in := fault.Plan(*chaosSeed, 4)
		srv.Injector = in
		l = fault.WrapListener(l, in)
		log.Printf("d3cd: CHAOS MODE — connection fault injector armed with seed %d", *chaosSeed)
	}
	log.Printf("d3cd: serving %s mode on %s (%d shards)", m, l.Addr(), sys.Engine().NumShards())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "d3cd: shutting down")
		cancel()
		srv.Shutdown()
		l.Close()
		sys.Close()
		if *dbFile != "" {
			if err := db.SaveFile(*dbFile); err != nil {
				log.Printf("d3cd: save %s: %v", *dbFile, err)
			} else {
				log.Printf("d3cd: snapshot saved to %s", *dbFile)
			}
		}
	}()

	if err := srv.Serve(l); err != nil {
		log.Fatalf("d3cd: %v", err)
	}
}
