// Command covgate is the CI coverage-floor gate: it reads a merged
// coverprofile produced by `go test -coverprofile` and exits non-zero when
// total statement coverage falls below the pinned floor. Like benchgate it
// fails CLOSED — a missing, empty, or malformed profile is a failure, not a
// silent pass, because the likeliest way to "pass" a coverage gate is for
// the profile to quietly stop being produced.
//
// Usage:
//
//	covgate -profile coverage.out -floor 75.0
//
// The floor is a percentage of covered statements over all profiled
// statements, the same figure `go tool cover -func` prints as "total".
// Per-package coverage is printed for the log but never gated: package
// floors invite gaming by test placement, while the total floor only moves
// when the codebase as a whole loses tested surface.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// block is one coverprofile entry: a span of statements and its hit count.
type block struct {
	stmts, count int
}

func main() {
	var (
		profilePath = flag.String("profile", "coverage.out", "coverprofile produced by go test -coverprofile")
		floor       = flag.Float64("floor", 0, "minimum total statement coverage, percent (required)")
	)
	flag.Parse()
	if *floor <= 0 {
		log.Fatal("covgate: -floor is required and must be positive (a zero floor gates nothing)")
	}

	f, err := os.Open(*profilePath)
	if err != nil {
		log.Fatalf("covgate: %v (fail-closed: no profile means no gate)", err)
	}
	defer f.Close()

	// Merged profiles can repeat a block (one copy per test binary that
	// loaded the file); keep the max count per block key, matching what
	// `go tool cover -func` reports for mode: set and atomic alike.
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lines := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		lines++
		// file.go:sl.sc,el.ec numstmts count
		fields := strings.Fields(line)
		if len(fields) != 3 {
			log.Fatalf("covgate: malformed profile line %q", line)
		}
		stmts, err1 := strconv.Atoi(fields[1])
		count, err2 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil {
			log.Fatalf("covgate: malformed profile line %q", line)
		}
		key := fields[0]
		b := blocks[key]
		if b.stmts == 0 {
			b.stmts = stmts
		}
		if count > b.count {
			b.count = count
		}
		blocks[key] = b
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("covgate: reading %s: %v", *profilePath, err)
	}
	if lines == 0 {
		log.Fatalf("covgate: %s holds no coverage blocks (fail-closed: an empty profile gates nothing)", *profilePath)
	}

	type agg struct{ total, covered int }
	perPkg := make(map[string]*agg)
	var all agg
	for key, b := range blocks {
		file := key[:strings.IndexByte(key, ':')]
		pkg := path.Dir(file)
		a := perPkg[pkg]
		if a == nil {
			a = &agg{}
			perPkg[pkg] = a
		}
		a.total += b.stmts
		all.total += b.stmts
		if b.count > 0 {
			a.covered += b.stmts
			all.covered += b.stmts
		}
	}

	pkgs := make([]string, 0, len(perPkg))
	for p := range perPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		a := perPkg[p]
		fmt.Printf("covgate: %-40s %6.1f%% (%d/%d statements)\n",
			p, 100*float64(a.covered)/float64(a.total), a.covered, a.total)
	}

	pct := 100 * float64(all.covered) / float64(all.total)
	if pct < *floor {
		fmt.Fprintf(os.Stderr, "covgate: FAIL — total coverage %.1f%% is below the pinned floor %.1f%% (%d/%d statements)\n",
			pct, *floor, all.covered, all.total)
		os.Exit(1)
	}
	fmt.Printf("covgate: PASS — total coverage %.1f%% meets the pinned floor %.1f%% (%d/%d statements)\n",
		pct, *floor, all.covered, all.total)
}
