// Command d3cbench regenerates the figures of the paper's evaluation
// (Section 5.3) and the design-choice ablations, printing one series per
// figure in the same shape the paper reports.
//
// Usage:
//
//	d3cbench [-experiment all|fig6|fig7|fig8|fig9|ablations|sharding|batching|arrival|flushpar|durability|pushdown]
//	         [-users 82168] [-scale 1.0] [-seed 42] [-shards 8] [-workers 8]
//	         [-batch 64] [-json path]
//
// -users sets the social-graph size (default: the paper's 82,168).
// -scale multiplies the workload sizes; 1.0 reproduces the paper's range
// (5 … 100,000 queries), smaller values give quick runs.
// -experiment arrival measures incremental per-arrival latency and
// allocations, closing vs non-closing (the engine's hot path), at the
// requested shard count and single-shard (the per-core reference rows);
// each row carries the hard AllocLimit the perf gate enforces.
// -experiment flushpar pins the out-of-lock coordination pipeline: one row
// drains a pre-loaded backlog through the persistent worker pool (per-
// component allocation budget), one row races concurrent submitters against
// backlog-triggered coordination rounds (per-submission budget), with
// answered counts cross-checked between the two.
// -experiment batching compares the three submission modes — single
// Submit, SubmitBatch, and the unordered SubmitBulk load path — timing the
// submission phase only (median of 5 reps), with identical answered counts
// enforced.
// -experiment durability measures the write-ahead log's overhead on the
// closing arrival path across fsync policies (no WAL at all, Off, Batch,
// Sync); the no-WAL and Off rows carry pinned alloc budgets, the Batch and
// Sync rows report honest wall-clock overhead only.
// -experiment pushdown compares extended coordination's aggregation-
// constraint evaluation paths on constraint-heavy workloads: constraints
// pushed into the compiled plan as residual filters (the default) versus
// the materialise-then-post-filter reference path, with identical
// answered/rejected/tuple counts enforced between the arms and pinned alloc
// budgets on both.
// -json writes every series the run produced as a machine-readable report,
// the format checked in as BENCH_arrival.json / BENCH_batching.json /
// BENCH_durability.json.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"entangle/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment: all, fig6, fig7, fig8, fig9, ablations, sharding, batching, arrival, flushpar, durability, pushdown")
		users      = flag.Int("users", 82168, "social graph size (paper: 82168)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes up to 100k queries)")
		seed       = flag.Int64("seed", 42, "deterministic seed")
		shards     = flag.Int("shards", 8, "shard count for the sharding and batching experiments")
		workers    = flag.Int("workers", 8, "concurrent submitters for the sharding experiment")
		batch      = flag.Int("batch", 64, "batch size for the batching experiment")
		jsonPath   = flag.String("json", "", "write the run's series as a JSON report to this path")
	)
	flag.Parse()
	if *experiment == "ablation" {
		*experiment = "ablations" // accept the singular alias
	}

	sizes := scaled([]int{5, 100, 1000, 10000, 100000}, *scale)
	fig7Queries := int(10000 * *scale)
	if fig7Queries < 60 {
		fig7Queries = 60
	}
	resident := int(20000 * *scale)
	if resident < 100 {
		resident = 100
	}

	start := time.Now()
	log.Printf("d3cbench: building social substrate (%d users)…", *users)
	env, err := bench.NewEnv(*users, *seed)
	if err != nil {
		log.Fatalf("d3cbench: %v", err)
	}
	log.Printf("d3cbench: substrate ready in %v (clustering ≈ %.3f)",
		time.Since(start).Round(time.Millisecond), env.G.ClusteringCoefficient(500, *seed))

	report := bench.NewReport(*experiment, *users, *scale, *seed)
	// emit prints a series and records it for the JSON report.
	emit := func(heading string, rows []bench.Row) {
		bench.PrintSeries(os.Stdout, heading, rows)
		report.Add(heading, rows)
	}

	run := func(name string, f func() error) {
		if *experiment != "all" && *experiment != name {
			return
		}
		if err := f(); err != nil {
			log.Fatalf("d3cbench: %s: %v", name, err)
		}
	}

	run("fig6", func() error {
		rows, err := env.Fig6TwoWayRandom(sizes)
		if err != nil {
			return err
		}
		emit("Figure 6 — two-way coordination, random workload", rows)
		rows, err = env.Fig6TwoWayBest(sizes)
		if err != nil {
			return err
		}
		emit("Figure 6 — two-way coordination, best case (fully specified)", rows)
		rows, err = env.Fig6ThreeWay(sizes)
		if err != nil {
			return err
		}
		emit("Figure 6 — three-way coordination (triangles)", rows)
		return nil
	})

	run("fig7", func() error {
		rows, err := env.Fig7Postconditions(fig7Queries, 5)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Figure 7 — scalability in the number of postconditions (%d queries)", fig7Queries), rows)
		return nil
	})

	run("fig8", func() error {
		rows, err := env.Fig8NoUnify(sizes)
		if err != nil {
			return err
		}
		emit("Figure 8 — no coordination, no unification", rows)
		rows, err = env.Fig8Chains(sizes, 16)
		if err != nil {
			return err
		}
		emit("Figure 8 — usual partitions (bounded chains)", rows)
		big := scaled([]int{100, 1000, 5000}, *scale)
		rows, err = env.Fig8BigCluster(big)
		if err != nil {
			return err
		}
		emit("Figure 8 — massive single cluster: incremental vs set-at-a-time", rows)
		return nil
	})

	run("fig9", func() error {
		rows, err := env.Fig9SafetyCheck(resident, sizes)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Figure 9 — safety check with %d resident queries", resident), rows)
		return nil
	})

	run("sharding", func() error {
		rows, err := env.ShardingComparison(scaled([]int{1000, 10000}, *scale), *shards, *workers)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Sharding — concurrent submit, 1 shard vs %d shards (%d workers)", *shards, *workers), rows)
		return nil
	})

	run("batching", func() error {
		rows, err := env.BatchingComparison(scaled([]int{1000, 10000}, *scale), *batch, *shards)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Batching — single Submit vs SubmitBatch B=%d vs SubmitBulk B=%d (%d shards); labels carry [router passes/submit locks]", *batch, *batch, *shards), rows)
		return nil
	})

	run("arrival", func() error {
		rows, err := env.ArrivalExperiment(scaled([]int{1000, 10000}, *scale), *shards)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Arrival — incremental per-arrival latency and allocations, closing vs non-closing (%d shards)", *shards), rows)
		return nil
	})

	run("flushpar", func() error {
		rows, err := env.FlushParExperiment(scaled([]int{1000, 10000}, *scale), *shards, *workers)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Flushpar — out-of-lock coordination rounds on the worker pool: backlog drain and submitters racing flush (%d shards, %d submitters)", *shards, *workers), rows)
		return nil
	})

	run("durability", func() error {
		n := int(10000 * *scale)
		if n < 60 {
			n = 60
		}
		rows, err := env.DurabilityExperiment(n, 1)
		if err != nil {
			return err
		}
		emit(
			fmt.Sprintf("Durability — WAL overhead on the closing arrival path, %d queries (1 shard; none/off alloc-gated, batch/sync latency only)", n), rows)
		return nil
	})

	run("pushdown", func() error {
		rows, err := bench.PushdownExperiment(scaled([]int{40, 200}, *scale), *seed)
		if err != nil {
			return err
		}
		emit("Pushdown — aggregation constraints as residual plan filters vs materialise-then-post-filter (alloc-gated)", rows)
		return nil
	})

	run("ablations", func() error {
		rows, err := env.AblationAtomIndex(scaled([]int{1000, 10000}, *scale))
		if err != nil {
			return err
		}
		emit("Ablation A1 — atom index vs linear scan (graph construction)", rows)
		rows, err = env.AblationModes(scaled([]int{1000, 10000}, *scale))
		if err != nil {
			return err
		}
		emit("Ablation A2 — incremental vs set-at-a-time on matched pairs", rows)
		rows, err = env.AblationMGU(int(3000**scale)+60, 3)
		if err != nil {
			return err
		}
		emit("Ablation A3 — union-find MGU vs naive quadratic merge", rows)
		rows, err = env.AblationCSPBaseline([]int{4, 8, 16, 24, 32})
		if err != nil {
			return err
		}
		emit("Ablation A4 — safe-fragment matcher vs CSP backtracking (Theorem 2.1)", rows)
		return nil
	})

	if *jsonPath != "" {
		if err := report.Write(*jsonPath); err != nil {
			log.Fatalf("d3cbench: writing %s: %v", *jsonPath, err)
		}
		log.Printf("d3cbench: wrote JSON report to %s", *jsonPath)
	}
	log.Printf("d3cbench: done in %v", time.Since(start).Round(time.Millisecond))
}

// scaled multiplies sizes by the scale factor, keeping a sane minimum.
func scaled(sizes []int, scale float64) []int {
	out := make([]int, 0, len(sizes))
	for _, s := range sizes {
		v := int(float64(s) * scale)
		if v < 5 {
			v = 5
		}
		out = append(out, v)
	}
	return out
}
