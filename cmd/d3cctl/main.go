// Command d3cctl is an interactive client for a d3cd server. It reads
// entangled queries from stdin — either entangled SQL (lines starting with
// SELECT, terminated by a blank line or CHOOSE clause) or the IR text
// syntax ({C} H :- B, one per line) — submits them, and prints results as
// they arrive.
//
// Commands:
//
//	.batch q1; q2; …   submit several IR queries as one engine batch
//	.bulk q1; q2; …    submit several IR queries as one unordered bulk load
//	.subscribe q1; q2; …  submit a query set as one subscription: all results
//	                   stream back on one multiplexed channel, surviving
//	                   reconnects with exactly one outcome per query
//	.prepare q         prepare an IR template ('$1'..'$K' placeholders)
//	.exec N v1; v2; …  execute prepared statement N with bindings
//	.flush             force a set-at-a-time round
//	.checkpoint        durably checkpoint the server's engine (durable servers)
//	.stats             print engine counters (plus WAL counters on durable servers)
//	.faults            print resilience counters (client reconnects, server fault injector)
//	.quit              exit
//
// The client self-heals: a dropped connection is redialed with backoff and
// unacked submissions are re-sent idempotently, so a flaky server restart
// surfaces as typed "connection lost" messages rather than killing the
// session.
//
// Usage: d3cctl [-addr localhost:7070]
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"entangle/internal/engine"
	"entangle/internal/server"
)

// describe renders an operation error with its typed cause spelled out, so
// transient transport failures are distinguishable from query errors.
func describe(err error) string {
	switch {
	case errors.Is(err, engine.ErrOverloaded):
		return fmt.Sprintf("server overloaded (shed; retry later): %v", err)
	case errors.Is(err, engine.ErrWALPoisoned):
		return fmt.Sprintf("server WAL poisoned (run .checkpoint to clear): %v", err)
	case errors.Is(err, server.ErrConnLost):
		return fmt.Sprintf("connection lost (client is redialing; retry the command): %v", err)
	case errors.Is(err, server.ErrOpTimeout):
		return fmt.Sprintf("operation timed out (server slow or unreachable): %v", err)
	case errors.Is(err, server.ErrClientClosed):
		return "client closed"
	default:
		return err.Error()
	}
}

func main() {
	addr := flag.String("addr", "localhost:7070", "d3cd server address")
	flag.Parse()

	c, err := server.DialWith(*addr, server.DialOptions{Reconnect: true})
	if err != nil {
		log.Fatalf("d3cctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected to %s — enter IR queries ({C} H :- B) or SQL (SELECT …; multiline until CHOOSE), .help for commands\n", *addr)

	results := make(chan server.Response, 64)
	sc := bufio.NewScanner(os.Stdin)
	var sqlBuf []string

	submitSQL := func(text string) {
		qid, ch, err := c.SubmitSQL(text)
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}
	submitIR := func(text string) {
		qid, ch, err := c.SubmitIR(text)
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}

	submitMany := func(text, cmd string, send func([]server.BatchQuery) ([]server.BatchHandle, error)) {
		var queries []server.BatchQuery
		for _, part := range strings.Split(text, ";") {
			if part = strings.TrimSpace(part); part != "" {
				queries = append(queries, server.BatchQuery{IR: part})
			}
		}
		if len(queries) == 0 {
			fmt.Printf("usage: .%s {C} H :- B; {C} H :- B; …\n", cmd)
			return
		}
		handles, err := send(queries)
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		for i, h := range handles {
			if h.Err != nil {
				fmt.Printf("batch[%d] error: %v\n", i, h.Err)
				continue
			}
			fmt.Printf("submitted q%d\n", h.ID)
			go func(ch <-chan server.Response) { results <- <-ch }(h.Ch)
		}
	}

	subscribe := func(text string) {
		var queries []server.BatchQuery
		for _, part := range strings.Split(text, ";") {
			if part = strings.TrimSpace(part); part != "" {
				queries = append(queries, server.BatchQuery{IR: part})
			}
		}
		if len(queries) == 0 {
			fmt.Println("usage: .subscribe {C} H :- B; {C} H :- B; …")
			return
		}
		sub, err := c.Subscribe(queries)
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		for i, item := range sub.Items() {
			if item.Error != "" {
				fmt.Printf("subscribe[%d] error: %s\n", i, item.Error)
			} else {
				fmt.Printf("subscribed q%d\n", item.ID)
			}
		}
		go func() {
			for r := range sub.Results() {
				results <- r
			}
		}()
	}

	stmts := make(map[int]*server.ClientStmt)
	nextStmt := 0
	prepare := func(text string) {
		var st *server.ClientStmt
		var err error
		if strings.HasPrefix(strings.ToUpper(text), "SELECT") {
			st, err = c.PrepareSQL(text)
		} else {
			st, err = c.PrepareIR(text)
		}
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		nextStmt++
		stmts[nextStmt] = st
		fmt.Printf("prepared s%d (%d bindings)\n", nextStmt, st.NumParams())
	}
	exec := func(text string) {
		fields := strings.SplitN(strings.TrimSpace(text), " ", 2)
		var id int
		if _, err := fmt.Sscanf(fields[0], "%d", &id); err != nil {
			fmt.Println("usage: .exec N v1; v2; …")
			return
		}
		st, ok := stmts[id]
		if !ok {
			fmt.Printf("error: no prepared statement s%d\n", id)
			return
		}
		var bindings []string
		if len(fields) == 2 {
			for _, part := range strings.Split(fields[1], ";") {
				if part = strings.TrimSpace(part); part != "" {
					bindings = append(bindings, part)
				}
			}
		}
		qid, ch, err := st.Execute(bindings...)
		if err != nil {
			fmt.Printf("error: %s\n", describe(err))
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}

	// Printer goroutine: results arrive asynchronously.
	go func() {
		for r := range results {
			if r.Status == "answered" {
				fmt.Printf("q%d answered: %s\n", r.ID, strings.Join(r.Tuples, ", "))
			} else {
				fmt.Printf("q%d %s: %s\n", r.ID, r.Status, r.Detail)
			}
		}
	}()

	prompt := func() { fmt.Print("> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			if len(sqlBuf) > 0 {
				submitSQL(strings.Join(sqlBuf, "\n"))
				sqlBuf = nil
			}
		case line == ".quit":
			return
		case line == ".help":
			fmt.Println("IR query:  {R(Jerry, x)} R(Kramer, x) :- Flights(x, Paris)")
			fmt.Println("SQL query: SELECT 'Kramer', fno INTO ANSWER R WHERE … CHOOSE 1 (multiline; ends at CHOOSE or blank line)")
			fmt.Println("commands:  .load <ddl/dml statements;…>  .batch <ir; ir; …>  .bulk <ir; ir; …>  .subscribe <ir; ir; …>  .prepare <template>  .exec <N> <v1; v2; …>  .flush  .checkpoint  .stats  .faults  .quit")
		case strings.HasPrefix(line, ".prepare "):
			prepare(strings.TrimPrefix(line, ".prepare "))
		case strings.HasPrefix(line, ".exec "):
			exec(strings.TrimPrefix(line, ".exec "))
		case strings.HasPrefix(line, ".subscribe "):
			subscribe(strings.TrimPrefix(line, ".subscribe "))
		case strings.HasPrefix(line, ".batch "):
			submitMany(strings.TrimPrefix(line, ".batch "), "batch", c.SubmitBatch)
		case strings.HasPrefix(line, ".bulk "):
			submitMany(strings.TrimPrefix(line, ".bulk "), "bulk", func(qs []server.BatchQuery) ([]server.BatchHandle, error) {
				return c.SubmitBulk(qs, false)
			})
		case strings.HasPrefix(line, ".load "):
			if err := c.Load(strings.TrimPrefix(line, ".load ")); err != nil {
				fmt.Printf("error: %s\n", describe(err))
			} else {
				fmt.Println("loaded")
			}
		case line == ".flush":
			if err := c.Flush(); err != nil {
				fmt.Printf("error: %s\n", describe(err))
			} else {
				fmt.Println("flushed")
			}
		case line == ".checkpoint":
			if err := c.Checkpoint(); err != nil {
				fmt.Printf("error: %s\n", describe(err))
			} else {
				fmt.Println("checkpointed")
			}
		case line == ".faults":
			ls := c.LocalStats()
			fmt.Printf("client: reconnects=%d conns-lost=%d dropped-replies=%d resubmits=%d\n",
				ls.Reconnects, ls.ConnsLost, ls.DroppedReplies, ls.Resubmits)
			st, err := c.Stats()
			if err != nil {
				fmt.Printf("error: %s\n", describe(err))
				break
			}
			if st.Stats != nil {
				poisoned := st.Stats.WAL != nil && st.Stats.WAL.Poisoned
				fmt.Printf("server: overloaded-shed=%d wal-poisoned=%v\n", st.Stats.Overloaded, poisoned)
			}
			if f := st.Faults; f != nil {
				fmt.Printf("injector: seed=%d injected=%d file-writes=%d/%d file-syncs=%d/%d conn-read-bytes=%d/%d conn-write-bytes=%d/%d (count/faults)\n",
					f.Seed, f.Injected(),
					f.FileWrites, f.FileWriteFaults, f.FileSyncs, f.FileSyncFaults,
					f.ConnReadBytes, f.ConnReadFaults, f.ConnWriteBytes, f.ConnWriteFaults)
			} else {
				fmt.Println("injector: none installed")
			}
		case line == ".stats":
			st, err := c.Stats()
			if err != nil {
				fmt.Printf("error: %s\n", describe(err))
			} else if st.Stats != nil {
				s := st.Stats
				fmt.Printf("submitted=%d answered=%d rejected=%d unsafe=%d stale=%d pending=%d flushes=%d router-passes=%d submit-locks=%d bulk-loads=%d bulk-flushes=%d families-retired=%d plan-hits=%d plan-misses=%d plan-evictions=%d\n",
					s.Submitted, s.Answered, s.Rejected, s.RejectedUnsafe, s.ExpiredStale, s.Pending, s.Flushes,
					s.RouterPasses, s.SubmitLocks, s.BulkLoads, s.BulkFlushes, s.FamiliesRetired,
					s.PlanHits, s.PlanMisses, s.PlanEvictions)
				fmt.Printf("  eval: workers=%d queue-depth=%d retries=%d\n",
					s.EvalWorkers, s.EvalQueueDepth, s.EvalRetries)
				if s.Overloaded > 0 {
					fmt.Printf("  overloaded: %d submissions shed\n", s.Overloaded)
				}
				if w := s.WAL; w != nil {
					fmt.Printf("  wal: records=%d bytes=%d fsyncs=%d checkpoints=%d last-checkpoint-age-ms=%d append-errors=%d checkpoint-errors=%d poisoned=%v\n",
						w.Records, w.Bytes, w.Fsyncs, w.Checkpoints, w.LastCheckpointAgeMS, w.AppendErrors, w.CheckpointErrors, w.Poisoned)
				}
				for i, sh := range s.PerShard {
					fmt.Printf("  shard %d: submitted=%d answered=%d rejected=%d unsafe=%d stale=%d pending=%d flushes=%d\n",
						i, sh.Submitted, sh.Answered, sh.Rejected, sh.RejectedUnsafe, sh.ExpiredStale, sh.Pending, sh.Flushes)
				}
			}
		case len(sqlBuf) > 0 || strings.HasPrefix(strings.ToUpper(line), "SELECT"):
			sqlBuf = append(sqlBuf, line)
			if strings.Contains(strings.ToUpper(line), "CHOOSE") {
				submitSQL(strings.Join(sqlBuf, "\n"))
				sqlBuf = nil
			}
		case strings.HasPrefix(line, "{"):
			submitIR(line)
		default:
			fmt.Println("unrecognised input; .help for syntax")
		}
		prompt()
	}
}
