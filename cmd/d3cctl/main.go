// Command d3cctl is an interactive client for a d3cd server. It reads
// entangled queries from stdin — either entangled SQL (lines starting with
// SELECT, terminated by a blank line or CHOOSE clause) or the IR text
// syntax ({C} H :- B, one per line) — submits them, and prints results as
// they arrive.
//
// Commands:
//
//	.batch q1; q2; …   submit several IR queries as one engine batch
//	.bulk q1; q2; …    submit several IR queries as one unordered bulk load
//	.prepare q         prepare an IR template ('$1'..'$K' placeholders)
//	.exec N v1; v2; …  execute prepared statement N with bindings
//	.flush             force a set-at-a-time round
//	.checkpoint        durably checkpoint the server's engine (durable servers)
//	.stats             print engine counters (plus WAL counters on durable servers)
//	.quit              exit
//
// Usage: d3cctl [-addr localhost:7070]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"entangle/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:7070", "d3cd server address")
	flag.Parse()

	c, err := server.Dial(*addr)
	if err != nil {
		log.Fatalf("d3cctl: %v", err)
	}
	defer c.Close()
	fmt.Printf("connected to %s — enter IR queries ({C} H :- B) or SQL (SELECT …; multiline until CHOOSE), .help for commands\n", *addr)

	results := make(chan server.Response, 64)
	sc := bufio.NewScanner(os.Stdin)
	var sqlBuf []string

	submitSQL := func(text string) {
		qid, ch, err := c.SubmitSQL(text)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}
	submitIR := func(text string) {
		qid, ch, err := c.SubmitIR(text)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}

	submitMany := func(text, cmd string, send func([]server.BatchQuery) ([]server.BatchHandle, error)) {
		var queries []server.BatchQuery
		for _, part := range strings.Split(text, ";") {
			if part = strings.TrimSpace(part); part != "" {
				queries = append(queries, server.BatchQuery{IR: part})
			}
		}
		if len(queries) == 0 {
			fmt.Printf("usage: .%s {C} H :- B; {C} H :- B; …\n", cmd)
			return
		}
		handles, err := send(queries)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		for i, h := range handles {
			if h.Err != nil {
				fmt.Printf("batch[%d] error: %v\n", i, h.Err)
				continue
			}
			fmt.Printf("submitted q%d\n", h.ID)
			go func(ch <-chan server.Response) { results <- <-ch }(h.Ch)
		}
	}

	stmts := make(map[int]*server.ClientStmt)
	nextStmt := 0
	prepare := func(text string) {
		var st *server.ClientStmt
		var err error
		if strings.HasPrefix(strings.ToUpper(text), "SELECT") {
			st, err = c.PrepareSQL(text)
		} else {
			st, err = c.PrepareIR(text)
		}
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		nextStmt++
		stmts[nextStmt] = st
		fmt.Printf("prepared s%d (%d bindings)\n", nextStmt, st.NumParams())
	}
	exec := func(text string) {
		fields := strings.SplitN(strings.TrimSpace(text), " ", 2)
		var id int
		if _, err := fmt.Sscanf(fields[0], "%d", &id); err != nil {
			fmt.Println("usage: .exec N v1; v2; …")
			return
		}
		st, ok := stmts[id]
		if !ok {
			fmt.Printf("error: no prepared statement s%d\n", id)
			return
		}
		var bindings []string
		if len(fields) == 2 {
			for _, part := range strings.Split(fields[1], ";") {
				if part = strings.TrimSpace(part); part != "" {
					bindings = append(bindings, part)
				}
			}
		}
		qid, ch, err := st.Execute(bindings...)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			return
		}
		fmt.Printf("submitted q%d\n", qid)
		go func() { results <- <-ch }()
	}

	// Printer goroutine: results arrive asynchronously.
	go func() {
		for r := range results {
			if r.Status == "answered" {
				fmt.Printf("q%d answered: %s\n", r.ID, strings.Join(r.Tuples, ", "))
			} else {
				fmt.Printf("q%d %s: %s\n", r.ID, r.Status, r.Detail)
			}
		}
	}()

	prompt := func() { fmt.Print("> ") }
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			if len(sqlBuf) > 0 {
				submitSQL(strings.Join(sqlBuf, "\n"))
				sqlBuf = nil
			}
		case line == ".quit":
			return
		case line == ".help":
			fmt.Println("IR query:  {R(Jerry, x)} R(Kramer, x) :- Flights(x, Paris)")
			fmt.Println("SQL query: SELECT 'Kramer', fno INTO ANSWER R WHERE … CHOOSE 1 (multiline; ends at CHOOSE or blank line)")
			fmt.Println("commands:  .load <ddl/dml statements;…>  .batch <ir; ir; …>  .bulk <ir; ir; …>  .prepare <template>  .exec <N> <v1; v2; …>  .flush  .checkpoint  .stats  .quit")
		case strings.HasPrefix(line, ".prepare "):
			prepare(strings.TrimPrefix(line, ".prepare "))
		case strings.HasPrefix(line, ".exec "):
			exec(strings.TrimPrefix(line, ".exec "))
		case strings.HasPrefix(line, ".batch "):
			submitMany(strings.TrimPrefix(line, ".batch "), "batch", c.SubmitBatch)
		case strings.HasPrefix(line, ".bulk "):
			submitMany(strings.TrimPrefix(line, ".bulk "), "bulk", func(qs []server.BatchQuery) ([]server.BatchHandle, error) {
				return c.SubmitBulk(qs, false)
			})
		case strings.HasPrefix(line, ".load "):
			if err := c.Load(strings.TrimPrefix(line, ".load ")); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Println("loaded")
			}
		case line == ".flush":
			if err := c.Flush(); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Println("flushed")
			}
		case line == ".checkpoint":
			if err := c.Checkpoint(); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Println("checkpointed")
			}
		case line == ".stats":
			st, err := c.Stats()
			if err != nil {
				fmt.Printf("error: %v\n", err)
			} else if st.Stats != nil {
				s := st.Stats
				fmt.Printf("submitted=%d answered=%d rejected=%d unsafe=%d stale=%d pending=%d flushes=%d router-passes=%d submit-locks=%d bulk-loads=%d bulk-flushes=%d families-retired=%d plan-hits=%d plan-misses=%d plan-evictions=%d\n",
					s.Submitted, s.Answered, s.Rejected, s.RejectedUnsafe, s.ExpiredStale, s.Pending, s.Flushes,
					s.RouterPasses, s.SubmitLocks, s.BulkLoads, s.BulkFlushes, s.FamiliesRetired,
					s.PlanHits, s.PlanMisses, s.PlanEvictions)
				if w := s.WAL; w != nil {
					fmt.Printf("  wal: records=%d bytes=%d fsyncs=%d checkpoints=%d last-checkpoint-age-ms=%d append-errors=%d checkpoint-errors=%d\n",
						w.Records, w.Bytes, w.Fsyncs, w.Checkpoints, w.LastCheckpointAgeMS, w.AppendErrors, w.CheckpointErrors)
				}
				for i, sh := range s.PerShard {
					fmt.Printf("  shard %d: submitted=%d answered=%d rejected=%d unsafe=%d stale=%d pending=%d flushes=%d\n",
						i, sh.Submitted, sh.Answered, sh.Rejected, sh.RejectedUnsafe, sh.ExpiredStale, sh.Pending, sh.Flushes)
				}
			}
		case len(sqlBuf) > 0 || strings.HasPrefix(strings.ToUpper(line), "SELECT"):
			sqlBuf = append(sqlBuf, line)
			if strings.Contains(strings.ToUpper(line), "CHOOSE") {
				submitSQL(strings.Join(sqlBuf, "\n"))
				sqlBuf = nil
			}
		case strings.HasPrefix(line, "{"):
			submitIR(line)
		default:
			fmt.Println("unrecognised input; .help for syntax")
		}
		prompt()
	}
}
