package entangle

// Benchmarks regenerating the paper's evaluation (Section 5.3): one
// benchmark per figure series plus the design-choice ablations called out
// in DESIGN.md. Sizes here are scaled for iteration speed; run
// cmd/d3cbench for the paper-scale sweep (5 … 100,000 queries over an
// 82,168-user social graph).
//
//	go test -bench=. -benchmem
//	go run ./cmd/d3cbench                  # full paper-scale figures
//	go run ./cmd/d3cbench -scale 0.01     # quick pass

import (
	"sync"
	"testing"

	"entangle/internal/bench"
)

// benchUsers is the social-graph size for testing.B runs; the paper's full
// 82,168-user graph is exercised by cmd/d3cbench.
const benchUsers = 10000

var (
	envOnce sync.Once
	envVal  *bench.Env
	envErr  error
)

func benchEnv(b *testing.B) *bench.Env {
	envOnce.Do(func() {
		envVal, envErr = bench.NewEnv(benchUsers, 42)
	})
	if envErr != nil {
		b.Fatal(envErr)
	}
	return envVal
}

// BenchmarkFig6TwoWayRandom — Figure 6, "random workload": friend pairs
// with variable partner designation; incremental evaluation.
func BenchmarkFig6TwoWayRandom(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig6TwoWayRandom([]int{1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6TwoWayBest — Figure 6, "best case": fully specified partner
// constants, no grounding join.
func BenchmarkFig6TwoWayBest(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig6TwoWayBest([]int{1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ThreeWay — Figure 6, three-way coordination over triangles.
func BenchmarkFig6ThreeWay(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig6ThreeWay([]int{999}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7Postconditions — Figure 7: matching and DB time as
// postconditions per query grow 1..5.
func BenchmarkFig7Postconditions(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig7Postconditions(600, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8NoUnify — Figure 8: arrivals that never unify; pure
// index-lookup overhead.
func BenchmarkFig8NoUnify(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig8NoUnify([]int{2000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8Chains — Figure 8 "usual partitions": bounded unification
// chains that never match.
func BenchmarkFig8Chains(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig8Chains([]int{2000}, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8BigClusterSetAtATime — Figure 8 stress test: one massive
// partition, incremental vs set-at-a-time.
func BenchmarkFig8BigClusterSetAtATime(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig8BigCluster([]int{500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SafetyCheck — Figure 9: admission safety check against a
// resident set of non-coordinating queries.
func BenchmarkFig9SafetyCheck(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.Fig9SafetyCheck(2000, []int{1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAtomIndex — A1: graph construction with the atom index
// vs linear scans.
func BenchmarkAblationAtomIndex(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblationAtomIndex([]int{1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationModes — A2: incremental vs set-at-a-time on matched
// pairs.
func BenchmarkAblationModes(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblationModes([]int{1000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationMGU — A3: union-find MGU vs the naive quadratic merge.
func BenchmarkAblationMGU(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblationMGU(600, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationCSPBaseline — A4: the safe-fragment matcher vs general
// CSP backtracking on identical workloads (Theorem 2.1 made concrete).
func BenchmarkAblationCSPBaseline(b *testing.B) {
	env := benchEnv(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := env.AblationCSPBaseline([]int{2, 4, 6}); err != nil {
			b.Fatal(err)
		}
	}
}
