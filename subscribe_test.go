package entangle

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"entangle/internal/ir"
)

func pairBatch(pairs int) []*Query {
	var qs []*Query
	for i := 0; i < pairs; i++ {
		qs = append(qs,
			MustParseIR(fmt.Sprintf("{S%d(K, x)} S%d(J, x) :- F(x, Paris)", i, i)),
			MustParseIR(fmt.Sprintf("{S%d(J, y)} S%d(K, y) :- F(y, Paris)", i, i)),
		)
	}
	return qs
}

func rootOutcomeKey(r Result) string {
	var tuples []string
	if r.Answer != nil {
		for _, tpl := range r.Answer.Tuples {
			tuples = append(tuples, tpl.String())
		}
	}
	sort.Strings(tuples)
	return fmt.Sprintf("%s|%s", r.Status, strings.Join(tuples, ","))
}

// TestSubscribeMatchesBatchHandles: Subscribe must deliver exactly one
// result per query on one channel, with the same outcomes SubmitBatch
// hands out through individual Handles over an identical workload.
func TestSubscribeMatchesBatchHandles(t *testing.T) {
	ctx := context.Background()

	want := map[ir.QueryID]string{}
	sysA := flightsSystem(t, WithSeed(1), WithShards(1))
	hs, err := sysA.SubmitBatch(ctx, pairBatch(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		r, err := h.Wait(ctx)
		if err != nil {
			t.Fatal(err)
		}
		want[r.QueryID] = rootOutcomeKey(r)
	}

	sysB := flightsSystem(t, WithSeed(1), WithShards(1))
	sub, err := sysB.Subscribe(ctx, pairBatch(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.IDs()) != 10 {
		t.Fatalf("ids = %d, want 10", len(sub.IDs()))
	}
	got := map[ir.QueryID]string{}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case r, ok := <-sub.Results():
			if !ok {
				if len(got) != 10 {
					t.Fatalf("stream closed after %d results, want 10", len(got))
				}
				// Engine ids are assigned in admission order on identically
				// seeded systems, so outcomes line up id-for-id.
				for id, w := range want {
					if got[id] != w {
						t.Fatalf("query %d: subscribe %q, handles %q", id, got[id], w)
					}
				}
				return
			}
			if _, dup := got[r.QueryID]; dup {
				t.Fatalf("query %d delivered twice", r.QueryID)
			}
			got[r.QueryID] = rootOutcomeKey(r)
		case <-deadline:
			t.Fatalf("subscription never completed; %d/10 delivered", len(got))
		}
	}
}

// TestSubscribeEmpty: a zero-query subscription yields a closed stream.
func TestSubscribeEmpty(t *testing.T) {
	sys := flightsSystem(t)
	sub, err := sys.Subscribe(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.Results(); ok {
		t.Fatal("empty subscription must deliver nothing")
	}
}
