package entangle

import (
	"context"

	"entangle/internal/engine"
	"entangle/internal/ir"
)

// Stmt is a prepared entangled-query template. Constant positions in the
// template may name placeholders $1..$K (written quoted, '$1', in the IR and
// SQL text syntaxes); Submit binds them and enqueues the resulting query.
// Preparing amortises parsing and validation across submissions, and every
// submission of a statement shares one plan-cache shape: the combined query
// of a coordinated component compiles once and repeats execute the cached
// plan (see WithPlanCacheSize). A Stmt is immutable and safe for concurrent
// use.
type Stmt struct {
	st *engine.Stmt
}

// NumParams returns the number of placeholder bindings Submit expects.
func (s *Stmt) NumParams() int { return s.st.NumParams() }

// Submit binds the template's placeholders to the given constants and
// enqueues the resulting query. len(bindings) must equal NumParams. The
// context gates admission only, as in System.Submit.
func (s *Stmt) Submit(ctx context.Context, bindings ...string) (*Handle, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	h, err := s.st.Submit(bindings...)
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	return newHandle(h), nil
}

// Prepare validates an IR query template and returns a reusable prepared
// statement. The template is deep-copied; the caller keeps ownership of q.
func (s *System) Prepare(ctx context.Context, q *ir.Query) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := s.eng.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// PrepareSQL parses an entangled-SQL template against the system's schema
// and prepares it. Placeholders appear as quoted literals ('$1').
func (s *System) PrepareSQL(ctx context.Context, sql string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := s.eng.PrepareSQL(sql)
	if err != nil {
		return nil, err
	}
	return &Stmt{st: st}, nil
}

// PrepareIR parses a query template in the IR text syntax ({C} H :- B) and
// prepares it.
func (s *System) PrepareIR(ctx context.Context, irText string) (*Stmt, error) {
	q, err := ir.Parse(0, irText)
	if err != nil {
		return nil, err
	}
	return s.Prepare(ctx, q)
}
