// MMO: coordination with unknown partners — the paper's massively
// multiplayer scenario where "coordination partners may be unknown and
// their identities irrelevant" (Section 1.1).
//
// Players queue for raids. A tank, a healer, and two damage dealers must
// commit to the same raid instance, but none of them knows who the others
// are: their postconditions designate partners purely by role, via the
// shared ANSWER relation Raid(role, slot, instance).
//
// Run: go run ./examples/mmo
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"entangle"
)

func main() {
	ctx := context.Background()
	sys, err := entangle.Open(
		entangle.WithSeed(time.Now().UnixNano()),
		entangle.WithStaleAfter(time.Second),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Raid instances currently open: Instances(iid, boss, minLevel).
	sys.MustCreateTable("Instances", "iid", "boss", "minlevel")
	for _, r := range [][]string{
		{"I1", "Ragnaros", "60"},
		{"I2", "Onyxia", "60"},
		{"I3", "Hogger", "10"},
	} {
		sys.MustInsert("Instances", r[0], r[1], r[2])
	}

	// Each role's query: "I take my slot in some instance, provided the
	// other three slots are filled in the same instance." Nobody names a
	// player — only roles. The party composition is Tank, Healer, DPS1,
	// DPS2; the cyclic postcondition chain Tank→Healer→DPS1→DPS2→Tank
	// keeps the set safe (each postcondition has exactly one partner head).
	submit := func(role, needs string) *entangle.Handle {
		q := entangle.MustParseIR(fmt.Sprintf(
			"{Raid(%s, i)} Raid(%s, i) :- Instances(i, b, l)", needs, role))
		q.Owner = role
		h, err := sys.Submit(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s queued (waiting for a party)…\n", role)
		return h
	}

	handles := map[string]*entangle.Handle{
		"Tank":   submit("Tank", "Healer"),
		"Healer": submit("Healer", "DPS1"),
		"DPS1":   submit("DPS1", "DPS2"),
	}
	// Until the fourth role arrives, nothing can be answered.
	if st := sys.Stats(); st.Answered != 0 || st.Pending != 3 {
		log.Fatalf("premature coordination: %+v", st)
	}
	fmt.Println("three of four slots queued; party still forming…")
	handles["DPS2"] = submit("DPS2", "Tank")

	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	var instance string
	for role, h := range handles {
		r, err := h.Wait(waitCtx)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Err(); err != nil {
			log.Fatalf("%s: %v", role, err)
		}
		got := r.Answer.Tuples[0].Args[1].Value
		if instance == "" {
			instance = got
		} else if got != instance {
			log.Fatalf("party split across instances: %s vs %s", got, instance)
		}
	}
	fmt.Printf("\nparty formed! all four players committed to instance %s — no out-of-band\n", instance)
	fmt.Println("communication, no player identities: coordination purely through desired shared outcomes.")
}
