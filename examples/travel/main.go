// Travel: group travel planning over a social network — the paper's
// motivating scenario at scale (Section 5.2).
//
// A synthetic social graph of 2,000 users is loaded into the database
// (Friends and User tables). Pairs of friends then submit the paper's
// two-way coordination queries as one SubmitBulk call — the unordered
// bulk-load path a booking front end draining a request queue would use:
// the whole wave is routed in one pass, each engine shard ingests its
// share set-at-a-time under one lock (atoms indexed, unifiability edges
// built, the safety check run once over the set), and a single flush per
// shard coordinates every pair that closed. A queue of buffered requests
// has no meaningful arrival order, which is exactly the contract SubmitBulk
// relaxes to skip per-query admission work. Pairs that share a hometown
// coordinate; the rest eventually go stale via the background Run loop.
//
// Run: go run ./examples/travel
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"entangle"
	"entangle/internal/workload"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	fmt.Println("building a 2,000-user social substrate…")
	g := workload.NewGraph(workload.Config{N: 2000, AvgDeg: 12, Seed: 7})
	sys, err := entangle.Open(
		entangle.WithSeed(7),
		entangle.WithStaleAfter(200*time.Millisecond),
		entangle.WithFlushInterval(50*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := workload.PopulateDB(sys.DB(), g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d users, clustering ≈ %.3f\n", g.N, g.ClusteringCoefficient(300, 7))
	go sys.Run(ctx)

	// 200 friend pairs submit "fly with a friend from my city" queries,
	// ingested as one batch.
	gen := workload.NewGen(g, 7)
	pairs := g.FriendPairs(200, 7)
	queries := gen.Interleave(gen.TwoWayRandom(pairs))
	fmt.Printf("bulk-loading %d entangled queries from %d friend pairs (unordered, set-at-a-time)…\n", len(queries), len(pairs))

	handles, err := sys.SubmitBulk(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}

	waitCtx, waitCancel := context.WithTimeout(ctx, 10*time.Second)
	defer waitCancel()
	var (
		mu     sync.Mutex
		counts = map[entangle.Status]int{}
		sample []string
		wg     sync.WaitGroup
	)
	for i, h := range handles {
		wg.Add(1)
		go func(owner string, h *entangle.Handle) {
			defer wg.Done()
			r, err := h.Wait(waitCtx)
			if err != nil {
				log.Fatal(err)
			}
			mu.Lock()
			defer mu.Unlock()
			counts[r.Status]++
			if r.Status == entangle.StatusAnswered && len(sample) < 5 {
				sample = append(sample, fmt.Sprintf("  %s booked: %s", owner, r.Answer.Tuples[0]))
			}
		}(queries[i].Owner, h)
	}
	wg.Wait()
	for _, line := range sample {
		fmt.Println(line)
	}

	fmt.Println("\noutcome summary:")
	for _, s := range []entangle.Status{entangle.StatusAnswered, entangle.StatusRejected, entangle.StatusStale, entangle.StatusUnsafe} {
		fmt.Printf("  %-9s %d\n", s, counts[s])
	}
	st := sys.Stats()
	fmt.Printf("engine: %d submissions, %d combined-query evaluations, %d router passes, %d submit locks, %d bulk loads / %d bulk flushes\n",
		st.Submitted, st.Evaluations, st.RouterPasses, st.SubmitLocks, st.BulkLoads, st.BulkFlushes)
	fmt.Println("\npairs sharing a hometown coordinated; pairs in different cities matched but found no")
	fmt.Println("satisfying data (rejected); queries whose partner collided with another pending pair")
	fmt.Println("were rejected by the safety check or timed out as stale.")
}
