// Travel: group travel planning over a social network — the paper's
// motivating scenario at scale (Section 5.2).
//
// A synthetic social graph of 2,000 users is loaded into the database
// (Friends and User tables). Pairs of friends then submit the paper's
// two-way coordination queries: each wants to fly to a destination with
// any friend from their own city. The engine matches arrivals
// incrementally; pairs that share a hometown coordinate, the rest
// eventually go stale.
//
// Run: go run ./examples/travel
package main

import (
	"fmt"
	"log"
	"time"

	"entangle/internal/engine"
	"entangle/internal/memdb"
	"entangle/internal/workload"
)

func main() {
	fmt.Println("building a 2,000-user social substrate…")
	g := workload.NewGraph(workload.Config{N: 2000, AvgDeg: 12, Seed: 7})
	db := memdb.New()
	if err := workload.PopulateDB(db, g); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d users, clustering ≈ %.3f\n", g.N, g.ClusteringCoefficient(300, 7))

	eng := engine.New(db, engine.Config{
		Mode:       engine.Incremental,
		StaleAfter: 200 * time.Millisecond,
		Seed:       7,
	})
	stop := make(chan struct{})
	go eng.Run(stop, 50*time.Millisecond)
	defer close(stop)
	defer eng.Close()

	// 200 friend pairs submit "fly with a friend from my city" queries.
	gen := workload.NewGen(g, 7)
	pairs := g.FriendPairs(200, 7)
	queries := gen.Interleave(gen.TwoWayRandom(pairs))
	fmt.Printf("submitting %d entangled queries from %d friend pairs…\n", len(queries), len(pairs))

	type outcome struct {
		owner string
		res   engine.Result
	}
	results := make(chan outcome, len(queries))
	for _, q := range queries {
		h, err := eng.Submit(q)
		if err != nil {
			log.Fatal(err)
		}
		owner := q.Owner
		go func(h *engine.Handle) {
			r := <-h.Done()
			results <- outcome{owner: owner, res: r}
		}(h)
	}

	counts := map[engine.Status]int{}
	var sampleShown int
	for i := 0; i < len(queries); i++ {
		o := <-results
		counts[o.res.Status]++
		if o.res.Status == engine.StatusAnswered && sampleShown < 5 {
			fmt.Printf("  %s booked: %s\n", o.owner, o.res.Answer.Tuples[0])
			sampleShown++
		}
	}
	fmt.Println("\noutcome summary:")
	for _, s := range []engine.Status{engine.StatusAnswered, engine.StatusRejected, engine.StatusStale, engine.StatusUnsafe} {
		fmt.Printf("  %-9s %d\n", s, counts[s])
	}
	st := eng.Stats()
	fmt.Printf("engine: %d submissions, %d combined-query evaluations\n", st.Submitted, st.Evaluations)
	fmt.Println("\npairs sharing a hometown coordinated; pairs in different cities matched but found no")
	fmt.Println("satisfying data (rejected); queries whose partner collided with another pending pair")
	fmt.Println("were rejected by the safety check or timed out as stale.")
}
