// Enrollment: coordination-aware course registration with the Section 6
// extensions — CHOOSE k multi-answer semantics and soft preferences.
//
// Three students want to enroll in the same courses as their friends. Each
// asks for up to two shared courses (CHOOSE 2), and they prefer morning
// sections. The extended evaluator returns coordinated course choices,
// ranked by the preference function.
//
// Run: go run ./examples/enrollment
package main

import (
	"fmt"
	"log"

	"entangle"
	"entangle/internal/ext"
	"entangle/internal/ir"
)

func main() {
	sys, err := entangle.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Course catalogue: Courses(cid, topic, slot).
	sys.MustCreateTable("Courses", "cid", "topic", "slot")
	for _, r := range [][]string{
		{"CS4320", "Databases", "morning"},
		{"CS4321", "Databases", "afternoon"},
		{"CS4820", "Algorithms", "morning"},
		{"CS4850", "Networks", "afternoon"},
		{"CS3110", "FP", "morning"},
	} {
		sys.MustInsert("Courses", r[0], r[1], r[2])
	}

	// A three-cycle of students: Ann wants whatever Bob takes, Bob wants
	// whatever Cas takes, Cas wants whatever Ann takes — so all three end
	// up in the same courses. CHOOSE 2 asks for two shared courses.
	mk := func(id entangle.QueryID, me, partner string) *entangle.Query {
		q := ir.MustParse(id, fmt.Sprintf(
			"{Enroll(%s, c)} Enroll(%s, c) :- Courses(c, t, s)", partner, me))
		q.Choose = 2
		q.Owner = me
		return q
	}
	queries := []*entangle.Query{
		mk(1, "Ann", "Bob"),
		mk(2, "Bob", "Cas"),
		mk(3, "Cas", "Ann"),
	}

	// Soft preference: morning sections score higher (Section 6: "the
	// evaluation algorithm should favor coordinating sets that satisfy the
	// users' preferences").
	morningFirst := func(val ir.Substitution) float64 {
		for _, t := range val {
			if t.Value == "morning" {
				return 1
			}
		}
		return 0
	}

	out, err := sys.CoordinateExtended(queries, nil, ext.Options{Preference: morningFirst})
	if err != nil {
		log.Fatal(err)
	}
	if len(out.Answers) == 0 {
		log.Fatal("no coordination achieved")
	}
	fmt.Println("coordinated enrollment (two shared courses each, mornings preferred):")
	for _, q := range queries {
		fmt.Printf("  %s:", q.Owner)
		for _, a := range out.Answers[q.ID] {
			fmt.Printf("  %s", a.Tuples[0])
		}
		fmt.Println()
	}

	// Verify the coordination property: per choice index, all three
	// students share the same course.
	for i := 0; i < 2; i++ {
		course := out.Answers[1][i].Tuples[0].Args[1].Value
		for id := entangle.QueryID(2); id <= 3; id++ {
			if got := out.Answers[id][i].Tuples[0].Args[1].Value; got != course {
				log.Fatalf("choice %d not coordinated: %s vs %s", i, got, course)
			}
		}
		fmt.Printf("choice %d: everyone is enrolled in %s\n", i+1, course)
	}
}
