// Quickstart: the paper's running example (Section 1.1) end to end.
//
// Kramer wants to fly to Paris on the same flight as Jerry; Jerry agrees
// but only flies United. Both submit entangled SQL; the system coordinates
// and both receive the same United flight to Paris.
//
// Run: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"entangle"
)

func main() {
	ctx := context.Background()
	sys, err := entangle.Open(entangle.WithSeed(time.Now().UnixNano()))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// The Figure 1 (a) database.
	sys.MustCreateTable("Flights", "fno", "dest")
	sys.MustCreateTable("Airlines", "fno", "airline")
	for _, r := range [][]string{{"122", "Paris"}, {"123", "Paris"}, {"134", "Paris"}, {"136", "Rome"}} {
		sys.MustInsert("Flights", r[0], r[1])
	}
	for _, r := range [][]string{{"122", "United"}, {"123", "United"}, {"134", "Lufthansa"}, {"136", "Alitalia"}} {
		sys.MustInsert("Airlines", r[0], r[1])
	}

	// Kramer's entangled query — verbatim from the paper's introduction.
	kramer, err := sys.SubmitSQL(ctx, `
SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE
fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER Reservation
CHOOSE 1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Kramer submitted; waiting for a coordination partner…")

	// Jerry's query with the additional United constraint.
	jerry, err := sys.SubmitSQL(ctx, `
SELECT 'Jerry', fno INTO ANSWER Reservation
WHERE
fno IN (SELECT fno FROM Flights F, Airlines A WHERE
        F.dest='Paris' AND F.fno = A.fno
        AND A.airline = 'United')
AND ('Kramer', fno) IN ANSWER Reservation
CHOOSE 1`)
	if err != nil {
		log.Fatal(err)
	}

	waitCtx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	rk, err := kramer.Wait(waitCtx)
	if err != nil {
		log.Fatal(err)
	}
	rj, err := jerry.Wait(waitCtx)
	if err != nil {
		log.Fatal(err)
	}
	if rk.Err() != nil || rj.Err() != nil {
		log.Fatalf("coordination failed: %v / %v", rk.Err(), rj.Err())
	}
	fmt.Printf("Kramer's reservation: %s\n", rk.Answer.Tuples[0])
	fmt.Printf("Jerry's  reservation: %s\n", rj.Answer.Tuples[0])
	fmt.Println("Both hold seats on the same United flight to Paris — coordinated without any out-of-band communication.")
}
