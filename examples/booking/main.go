// Booking: the full coordination-then-transaction lifecycle the paper's
// Section 5.1 sketches ("the intent is that Kramer and Jerry should now be
// able to make a booking on flight 122").
//
// Coordination answers tell each user which flight to book; the booking
// itself is a subsequent database update. This example runs several rounds:
// each round, a group of travellers coordinates on a flight with remaining
// seats, then books (decrementing the seat inventory). When a flight sells
// out, later groups are steered to other flights because the seat check is
// part of the entangled query body — exactly the "checks for seat
// availability" the paper says real travel queries would include.
//
// Run: go run ./examples/booking
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"entangle"
)

func main() {
	ctx := context.Background()
	sys, err := entangle.Open(entangle.WithSeed(99))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Seats(fno, seatsLeft) — inventory is data, so "has free seats" is
	// just another body atom. With string-valued columns we track the
	// seat count bucket explicitly: a flight is listed in Available while
	// it has capacity.
	sys.MustCreateTable("Flights", "fno", "dest")
	sys.MustCreateTable("Available", "fno") // flights with free seats
	capacity := map[string]int{"122": 2, "123": 4, "134": 2}
	for fno := range capacity {
		sys.MustInsert("Flights", fno, "Paris")
		sys.MustInsert("Available", fno)
	}

	book := func(fno string, seats int) {
		capacity[fno] -= seats
		if capacity[fno] <= 0 {
			// Sold out: remove the flight from the availability relation.
			if _, err := sys.DB().Delete("Available", "fno", fno); err != nil {
				log.Fatal(err)
			}
		}
	}

	pairNames := [][2]string{
		{"Kramer", "Jerry"},
		{"Elaine", "George"},
		{"Newman", "Susan"},
		{"Frank", "Estelle"},
	}
	booked := map[string][]string{}
	for round, pair := range pairNames {
		// Each traveller requires: a Paris flight, with seats available,
		// and their partner on the same flight. Both members of the pair
		// are admitted together as one batch.
		mk := func(me, partner string) string {
			return fmt.Sprintf(
				"{Res%d(%s, f)} Res%d(%s, f) :- Flights(f, Paris) ∧ Available(f)",
				round, partner, round, me)
		}
		handles, err := sys.SubmitBatch(ctx, []*entangle.Query{
			entangle.MustParseIR(mk(pair[0], pair[1])),
			entangle.MustParseIR(mk(pair[1], pair[0])),
		})
		if err != nil {
			log.Fatal(err)
		}
		waitCtx, cancel := context.WithTimeout(ctx, time.Second)
		r1, err := handles[0].Wait(waitCtx)
		if err != nil {
			log.Fatal(err)
		}
		r2, err := handles[1].Wait(waitCtx)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		if r1.Err() != nil || r2.Err() != nil {
			log.Fatalf("round %d: coordination failed: %v / %v", round, r1.Err(), r2.Err())
		}
		fno := r1.Answer.Tuples[0].Args[1].Value
		if got := r2.Answer.Tuples[0].Args[1].Value; got != fno {
			log.Fatalf("round %d: pair split across flights %s / %s", round, fno, got)
		}
		if capacity[fno] < 2 {
			log.Fatalf("round %d: coordinated onto sold-out flight %s", round, fno)
		}
		book(fno, 2)
		booked[fno] = append(booked[fno], pair[0], pair[1])
		fmt.Printf("round %d: %s and %s coordinated and booked flight %s (%d seats left)\n",
			round+1, pair[0], pair[1], fno, capacity[fno])
	}

	fmt.Println("\nfinal manifest:")
	total := 0
	for fno, pax := range booked {
		fmt.Printf("  flight %s: %v\n", fno, pax)
		total += len(pax)
		if capacity[fno] < 0 {
			log.Fatalf("flight %s overbooked", fno)
		}
	}
	fmt.Printf("%d travellers booked; no flight oversold — availability was enforced inside the\n", total)
	fmt.Println("entangled query body, so coordination only ever chose flights with open seats.")
}
