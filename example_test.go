package entangle_test

import (
	"context"
	"fmt"

	"entangle"
)

// Example reproduces the paper's introduction: Kramer and Jerry coordinate
// on a United flight to Paris through entangled SQL.
func Example() {
	ctx := context.Background()
	sys, _ := entangle.Open()
	defer sys.Close()
	sys.MustCreateTable("Flights", "fno", "dest")
	sys.MustCreateTable("Airlines", "fno", "airline")
	sys.MustInsert("Flights", "122", "Paris")
	sys.MustInsert("Airlines", "122", "United")

	kramer, _ := sys.SubmitSQL(ctx, `SELECT 'Kramer', fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
AND ('Jerry', fno) IN ANSWER Reservation CHOOSE 1`)
	jerry, _ := sys.SubmitSQL(ctx, `SELECT 'Jerry', fno INTO ANSWER Reservation
WHERE fno IN (SELECT fno FROM Flights F, Airlines A
              WHERE F.dest='Paris' AND F.fno = A.fno AND A.airline='United')
AND ('Kramer', fno) IN ANSWER Reservation CHOOSE 1`)

	rk, _ := kramer.Wait(ctx)
	rj, _ := jerry.Wait(ctx)
	fmt.Println(rk.Answer.Tuples[0])
	fmt.Println(rj.Answer.Tuples[0])
	// Output:
	// Reservation(Kramer, 122)
	// Reservation(Jerry, 122)
}

// ExampleSystem_SubmitIR shows the Datalog-like intermediate representation
// as a submission syntax: {postconditions} heads :- body.
func ExampleSystem_SubmitIR() {
	ctx := context.Background()
	sys, _ := entangle.Open()
	defer sys.Close()
	sys.MustCreateTable("Courses", "cid", "slot")
	sys.MustInsert("Courses", "CS4320", "morning")

	ann, _ := sys.SubmitIR(ctx, "{Enroll(Bob, c)} Enroll(Ann, c) :- Courses(c, s)")
	bob, _ := sys.SubmitIR(ctx, "{Enroll(Ann, c)} Enroll(Bob, c) :- Courses(c, s)")
	ra, _ := ann.Wait(ctx)
	rb, _ := bob.Wait(ctx)
	fmt.Println(ra.Answer.Tuples[0], "/", rb.Answer.Tuples[0])
	// Output: Enroll(Ann, CS4320) / Enroll(Bob, CS4320)
}

// ExampleSystem_SubmitBatch ingests a group of entangled queries in one
// batch: one routing pass, one lock per touched shard, same outcomes as
// submitting them one at a time.
func ExampleSystem_SubmitBatch() {
	ctx := context.Background()
	sys, _ := entangle.Open()
	defer sys.Close()
	sys.MustCreateTable("F", "fno", "dest")
	sys.MustInsert("F", "136", "Rome")

	handles, _ := sys.SubmitBatch(ctx, []*entangle.Query{
		entangle.MustParseIR("{R(B, x)} R(A, x) :- F(x, Rome)"),
		entangle.MustParseIR("{R(A, y)} R(B, y) :- F(y, Rome)"),
	})
	for _, h := range handles {
		r, _ := h.Wait(ctx)
		fmt.Println(r.Answer.Tuples[0])
	}
	// Output:
	// R(A, 136)
	// R(B, 136)
}

// ExampleSystem_Coordinate shows synchronous batch coordination
// (set-at-a-time) and inspection of the outcome.
func ExampleSystem_Coordinate() {
	sys, _ := entangle.Open()
	defer sys.Close()
	sys.MustCreateTable("F", "fno", "dest")
	sys.MustInsert("F", "136", "Rome")

	q1 := entangle.MustParseIR("{R(B, x)} R(A, x) :- F(x, Rome)")
	q1.ID = 1
	q2 := entangle.MustParseIR("{R(A, y)} R(B, y) :- F(y, Rome)")
	q2.ID = 2
	out, _ := sys.Coordinate([]*entangle.Query{q1, q2})
	fmt.Println(out.Answers[1].Tuples[0])
	fmt.Println(out.Answers[2].Tuples[0])
	// Output:
	// R(A, 136)
	// R(B, 136)
}
