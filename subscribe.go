package entangle

import (
	"context"
	"sync/atomic"

	"entangle/internal/engine"
	"entangle/internal/ir"
)

// Subscription streams the terminal Results of a whole submitted query set
// over one channel, in delivery order — the streaming alternative to
// holding one Handle per query. Heavy-traffic callers submitting thousands
// of entangled queries consume a single channel instead of selecting over
// thousands of Done channels; internally the engine fans results in with a
// per-delivery callback, so a subscription costs no goroutines at all.
type Subscription struct {
	ids       []ir.QueryID
	ch        chan Result
	remaining atomic.Int64
}

// IDs returns the engine-assigned query IDs, in input order.
func (s *Subscription) IDs() []ir.QueryID { return s.ids }

// Results returns the stream of terminal results: exactly one Result per
// submitted query, in the order the engine resolves them (not input
// order — route by Result.QueryID). The channel is closed after the last
// result; range over it. The channel is buffered to the query count, so
// the engine never blocks on a slow consumer.
func (s *Subscription) Results() <-chan Result { return s.ch }

// Subscribe enqueues a batch of queries like SubmitBatch but returns one
// multiplexed result stream instead of per-query Handles. Admission
// semantics (single routing pass, batch order, all-or-nothing on error)
// are identical to SubmitBatch; each query still resolves to exactly one
// terminal Result, delivered on Results. Returns ErrClosed after Close.
func (s *System) Subscribe(ctx context.Context, qs []*ir.Query) (*Subscription, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sub := &Subscription{ch: make(chan Result, len(qs))}
	sub.remaining.Store(int64(len(qs)))
	if len(qs) == 0 {
		close(sub.ch)
		return sub, nil
	}
	// The hook runs on the delivering goroutine; the buffered channel (one
	// slot per query, exactly one result per query) makes the send
	// non-blocking by construction.
	ehs, err := s.eng.SubmitBatchNotify(qs, func(r engine.Result) {
		sub.ch <- Result{QueryID: r.QueryID, Status: r.Status, Answer: r.Answer, Detail: r.Detail}
		if sub.remaining.Add(-1) == 0 {
			close(sub.ch)
		}
	})
	if err != nil {
		return nil, wrapSubmitErr(err)
	}
	sub.ids = make([]ir.QueryID, len(ehs))
	for i, eh := range ehs {
		sub.ids[i] = eh.ID
	}
	return sub, nil
}
