package entangle

import (
	"context"
	"testing"
)

func TestPreparedStatementFlow(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)

	st, err := sys.PrepareIR(ctx, "{R('$2', x)} R('$1', x) :- Flights(x, '$3')")
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", st.NumParams())
	}

	// Two submissions of the same template coordinate like hand-written
	// queries — and land on one cached plan shape.
	h1, err := st.Submit(ctx, "Kramer", "Jerry", "Paris")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := st.Submit(ctx, "Jerry", "Kramer", "Paris")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Err() != nil || r2.Err() != nil {
		t.Fatalf("errs %v/%v", r1.Err(), r2.Err())
	}
	if r1.Answer.Tuples[0].Args[1].Value != r2.Answer.Tuples[0].Args[1].Value {
		t.Fatal("not coordinated")
	}

	// Rebinding with different constants reuses the shape: a second pair on
	// Rome must not compile a new plan (PlanMisses stays flat).
	misses := sys.Stats().PlanMisses
	h3, err := st.Submit(ctx, "A", "B", "Rome")
	if err != nil {
		t.Fatal(err)
	}
	h4, err := st.Submit(ctx, "B", "A", "Rome")
	if err != nil {
		t.Fatal(err)
	}
	if r, err := h3.Wait(ctx); err != nil || r.Err() != nil {
		t.Fatalf("r3: %v %v", err, r.Err())
	}
	if r, err := h4.Wait(ctx); err != nil || r.Err() != nil {
		t.Fatalf("r4: %v %v", err, r.Err())
	}
	if got := sys.Stats().PlanMisses; got != misses {
		t.Fatalf("PlanMisses %d -> %d: repeat shape must be a cache hit", misses, got)
	}

	if _, err := st.Submit(ctx, "only-one"); err == nil {
		t.Fatal("binding-count mismatch must be rejected")
	}
	if _, err := sys.PrepareIR(ctx, "{R(J, x)} R('$2', x) :- Flights(x, Paris)"); err == nil {
		t.Fatal("gapped placeholders must fail Prepare")
	}
}

func TestPrepareSQLPlaceholders(t *testing.T) {
	ctx := context.Background()
	sys := flightsSystem(t)
	st, err := sys.PrepareSQL(ctx, `SELECT '$1', fno INTO ANSWER R
WHERE fno IN (SELECT fno FROM Flights WHERE dest='$3')
AND ('$2', fno) IN ANSWER R CHOOSE 1`)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumParams() != 3 {
		t.Fatalf("NumParams = %d, want 3", st.NumParams())
	}
	h1, err := st.Submit(ctx, "Kramer", "Jerry", "Paris")
	if err != nil {
		t.Fatal(err)
	}
	h2, err := st.Submit(ctx, "Jerry", "Kramer", "Paris")
	if err != nil {
		t.Fatal(err)
	}
	if r, err := h1.Wait(ctx); err != nil || r.Err() != nil {
		t.Fatalf("r1: %v %v", err, r.Err())
	}
	if r, err := h2.Wait(ctx); err != nil || r.Err() != nil {
		t.Fatalf("r2: %v %v", err, r.Err())
	}
}
