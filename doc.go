// Package entangle is a from-scratch Go implementation of entangled
// queries — the declarative data-driven coordination (D3C) language and
// evaluation system of "Entangled Queries: Enabling Declarative Data-Driven
// Coordination" (Gupta, Kot, Roy, Bender, Gehrke, Koch; SIGMOD 2011).
//
// Entangled queries extend SQL with constraints over virtual ANSWER
// relations so that queries from different users are answered jointly with
// a coordinated choice of tuples ("Kramer flies to Paris on the same flight
// as Jerry"). The library provides:
//
//   - internal/core — the high-level System façade (start here);
//   - internal/eqsql — the entangled-SQL parser and translator;
//   - internal/ir — the {C} H :- B intermediate representation;
//   - internal/match — safety, UCS, unifier propagation (Algorithm 1) and
//     combined-query construction;
//   - internal/engine — the asynchronous coordination engine (incremental
//     and set-at-a-time modes, staleness), sharded for parallel
//     coordination: the pending set is partitioned across N shards, each
//     with its own unifiability graph, safety checker and lock, and queries
//     are routed by the relation names of their head/postcondition atoms so
//     that potential coordination partners always meet on the same shard
//     (see the engine package comment for the routing invariant);
//   - internal/server — a TCP/JSON front end for many concurrent clients;
//   - internal/memdb — the in-memory conjunctive-query database substrate;
//   - internal/workload, internal/bench — the paper's experimental
//     workloads and the harness regenerating every evaluation figure;
//   - internal/csp — the general NP-complete baseline (Theorem 2.1);
//   - internal/ext — the Section 6 extensions (CHOOSE k, aggregation
//     postconditions, soft preferences).
//
// The root package contains no code of its own; see the benchmarks in
// bench_test.go (one per paper figure) and the runnable programs under
// examples/ and cmd/.
package entangle
