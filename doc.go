// Package entangle is a from-scratch Go implementation of entangled
// queries — the declarative data-driven coordination (D3C) language and
// evaluation system of "Entangled Queries: Enabling Declarative Data-Driven
// Coordination" (Gupta, Kot, Roy, Bender, Gehrke, Koch; SIGMOD 2011).
//
// Entangled queries extend SQL with constraints over virtual ANSWER
// relations so that queries from different users are answered jointly with
// a coordinated choice of tuples ("Kramer flies to Paris on the same flight
// as Jerry").
//
// This root package IS the public API: a context-first façade over the
// internal engine. Open a System, load data, submit entangled queries, and
// wait for coordinated answers:
//
//	sys, err := entangle.Open(entangle.WithSeed(42))
//	if err != nil { … }
//	defer sys.Close()
//	sys.MustCreateTable("Flights", "fno", "dest")
//	sys.MustInsert("Flights", "122", "Paris")
//
//	h1, _ := sys.SubmitSQL(ctx, `SELECT 'Kramer', fno INTO ANSWER R
//	    WHERE fno IN (SELECT fno FROM Flights WHERE dest='Paris')
//	    AND ('Jerry', fno) IN ANSWER R CHOOSE 1`)
//	h2, _ := sys.SubmitSQL(ctx, `SELECT 'Jerry', fno INTO ANSWER R …`)
//	r1, _ := h1.Wait(ctx) // blocks until coordination succeeds or fails
//
// Query answering is asynchronous middleware (Section 5.1 of the paper): a
// submitted query may wait for partners, every handle resolves to exactly
// one Result, and Wait respects context cancellation without losing the
// result for a later Wait. Batches go through SubmitBatch, which admits a
// whole batch with one routing pass and one lock acquisition per engine
// shard while staying equivalent to one-at-a-time submission; bulk loads go
// through SubmitBulk, which additionally drops the intra-batch ordering
// guarantee to ingest and coordinate each batch set-at-a-time — the cheaper
// path whenever the batch is a set, not a sequence (see "Bulk loading" in
// README.md). Repeated query shapes go through prepared statements:
// Prepare/PrepareSQL/PrepareIR compile-check a template whose constants may
// be '$1'…'$K' placeholders, and Stmt.Submit(ctx, bindings...) submits one
// instance per binding set — every instance shares one cached evaluation
// plan (see "Prepared statements" in README.md). Callers coordinating many
// queries at once can replace one-Handle-per-query with Subscribe, which
// admits a batch and streams every terminal result over one channel that
// closes after the last — exactly one result per query, with outcomes
// identical to individual handles (see "Streaming subscriptions" in
// README.md).
//
// WithDataDir makes the system durable: admissions, results, expiries and
// DDL are written ahead to a CRC-framed log (fsync policy per
// WithDurability: Off, Batch group-commit, or Sync), periodic checkpoints
// (WithCheckpointEvery, driven by Run) bound the log, and Open recovers by
// deterministic replay — the database is rebuilt from the checkpoint,
// still-pending queries are re-admitted in original ID order, and
// already-delivered results are not re-delivered, so a recovered System is
// observationally equivalent to one that never crashed (see "Durability"
// in README.md).
//
// The system degrades gracefully instead of falling over: WithMaxPending
// caps the engine-wide pending set, shedding excess submissions with a
// typed ErrOverloaded (whole batches refused atomically) rather than
// growing without bound, and a WAL write failure poisons the log so every
// later durable submission fails fast with ErrWALPoisoned — memory never
// silently diverges from disk — until a successful Checkpoint supersedes
// the broken epoch and clears the poison (see "Resilience" in README.md;
// the fault-injection chaos harness that exercises these paths lives in
// internal/fault). Failures are typed:
// errors.Is(err, ErrClosed) after Close,
// errors.Is(err, ErrOverloaded) on shed submissions,
// errors.Is(err, ErrWALPoisoned) on a poisoned durable system,
// errors.Is(res.Err(), ErrStale / ErrUnsafe / ErrRejected) on non-answered
// results, and errors.As(err, **ParseError) for syntax errors with offsets.
//
// The implementation lives under internal/:
//
//   - internal/eqsql — the entangled-SQL parser and translator;
//   - internal/ir — the {C} H :- B intermediate representation;
//   - internal/match — safety, UCS, unifier propagation (Algorithm 1) and
//     combined-query construction;
//   - internal/engine — the asynchronous coordination engine (incremental
//     and set-at-a-time modes, staleness), sharded for parallel
//     coordination: the pending set is partitioned across N shards, each
//     with its own unifiability graph, safety checker and lock, and queries
//     are routed by the relation names of their head/postcondition atoms so
//     that potential coordination partners always meet on the same shard
//     (see the engine package comment for the routing invariant);
//   - internal/server — a TCP/JSON front end for many concurrent clients,
//     with single, batched, prepared and subscription (one multiplexed
//     result stream per query set, replayable across reconnects by
//     idempotency token) ops, per-connection overload caps, idempotent
//     re-submission tokens, and a self-healing client (reconnect with
//     backoff, typed connection-loss results);
//   - internal/fault — the seed-driven deterministic fault injector the
//     chaos tests drive through the WAL and the server's connections;
//   - internal/memdb — the in-memory conjunctive-query database substrate,
//     with compiled evaluation plans and the shape-keyed plan cache;
//   - internal/wal — the write-ahead log and checkpoint store behind
//     WithDataDir (record framing, group commit, deterministic recovery);
//   - internal/workload, internal/bench — the paper's experimental
//     workloads and the harness regenerating every evaluation figure;
//   - internal/csp — the general NP-complete baseline (Theorem 2.1);
//   - internal/ext — the Section 6 extensions (CHOOSE k, aggregation
//     postconditions, soft preferences), with aggregation constraints
//     pushed into the compiled plans as residual filters by default and
//     the materialising post-filter path kept as an equivalence-tested
//     reference.
//
// See README.md for a quickstart, the benchmarks in bench_test.go (one per
// paper figure), and the runnable programs under examples/ and cmd/.
package entangle
